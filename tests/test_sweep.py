"""Tests for the declarative sweep engine and its CLI."""

import pytest

from repro.cache import reset_cache
from repro.experiments.runner import clear_cache
from repro.experiments.sweep import (
    SweepSpec,
    build_parser,
    list_components,
    main,
    run_sweep,
)
from repro.registry import RegistryError
from repro.telemetry.manifest import load_manifest, manifest_dir

WALK = 100


@pytest.fixture(autouse=True)
def _fresh_state(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    reset_cache()
    clear_cache()
    yield
    clear_cache()
    reset_cache()


class TestSpecRoundtrip:
    def test_to_dict_emits_only_non_defaults(self):
        spec = SweepSpec(apps=("Music",))
        assert spec.to_dict() == {"apps": ["Music"]}
        spec = SweepSpec(apps=("Music",), schemes=("baseline", "critic"),
                         walk_blocks=WALK, engine="batch")
        assert spec.to_dict() == {
            "apps": ["Music"], "schemes": ["baseline", "critic"],
            "walk_blocks": WALK, "engine": "batch",
        }

    def test_from_dict_roundtrips(self):
        spec = SweepSpec(apps=("Music", "Email"),
                         schemes=("baseline", "critic"),
                         configs=("google-tablet",),
                         prefetchers=("critical-nextline",),
                         icache_policy="trrip", walk_blocks=WALK)
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    def test_workload_family_roundtrips(self):
        spec = SweepSpec(apps=("Music",), walk_blocks=WALK,
                         workload_family="bursty")
        assert spec.to_dict() == {"apps": ["Music"], "walk_blocks": WALK,
                                  "workload_family": "bursty"}
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_accepts_comma_separated_axes(self):
        spec = SweepSpec.from_dict(
            {"apps": "Music, Email", "schemes": "baseline,critic"})
        assert spec.apps == ("Music", "Email")
        assert spec.schemes == ("baseline", "critic")

    def test_from_dict_rejects_unknown_fields_by_name(self):
        with pytest.raises(ValueError, match="walk_block"):
            SweepSpec.from_dict({"apps": ["Music"], "walk_block": 60})

    def test_from_dict_rejects_empty_apps(self):
        with pytest.raises(ValueError, match="apps"):
            SweepSpec.from_dict({"apps": []})

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            SweepSpec.from_dict(["Music"])


class TestSweepSpec:
    def test_validate_unknown_scheme_suggests(self):
        spec = SweepSpec(apps=("Music",), schemes=("crtic",))
        with pytest.raises(RegistryError, match="critic"):
            spec.validate()

    def test_validate_unknown_config(self):
        spec = SweepSpec(apps=("Music",), configs=("google-tablte",))
        with pytest.raises(RegistryError, match="google-tablet"):
            spec.validate()

    def test_validate_unknown_prefetcher(self):
        spec = SweepSpec(apps=("Music",), prefetchers=("clptt",))
        with pytest.raises(RegistryError, match="clpt"):
            spec.validate()

    def test_validate_unknown_policy(self):
        spec = SweepSpec(apps=("Music",), icache_policy="trip")
        with pytest.raises(RegistryError, match="trrip"):
            spec.validate()

    def test_validate_unknown_family_suggests(self):
        spec = SweepSpec(apps=("Music",), workload_family="zipfain")
        with pytest.raises(RegistryError, match="zipfian-footprint"):
            spec.validate()

    def test_validate_unknown_executor(self):
        spec = SweepSpec(apps=("Music",), executor="flete")
        with pytest.raises(RegistryError, match="fleet"):
            spec.validate()

    def test_resolve_plain_names(self):
        spec = SweepSpec(apps=("Music",),
                         configs=("google-tablet", "trrip-icache"))
        names = [c.name for c in spec.resolve_configs()]
        assert names == ["google-tablet", "trrip-icache"]

    def test_resolve_with_overrides_derives_names(self):
        spec = SweepSpec(
            apps=("Music",),
            prefetchers=("critical-nextline",),
            icache_policy="trrip",
        )
        (config,) = spec.resolve_configs()
        assert config.name == "google-tablet+pf=critical-nextline+i$=trrip"
        assert config.memory.icache_policy == "trrip"
        assert config.active_prefetchers() == ("critical-nextline",)


class TestRunSweep:
    def test_grid_table_and_manifest(self):
        spec = SweepSpec(apps=("Music", "Email"),
                         schemes=("baseline", "critic"),
                         walk_blocks=WALK, jobs=1)
        result = run_sweep(spec)

        baseline = result.cell("Music", "baseline", "google-tablet")
        critic = result.cell("Music", "critic", "google-tablet")
        assert baseline.cycles > 0
        assert critic.cycles <= baseline.cycles

        table = result.comparison_table()
        assert "critic:speedup" in table
        assert "GEOMEAN" in table

        manifest = load_manifest(str(manifest_dir() / "last_run.json"))
        assert manifest["kind"] == "sweep"
        assert manifest["apps"] == ["Email", "Music"]  # sorted
        components = manifest["components"]["google-tablet"]
        assert components["icache_policy"] == "lru@1"

    def test_component_override_reaches_manifest(self):
        spec = SweepSpec(apps=("Music",), schemes=("baseline",),
                         prefetchers=("critical-nextline",),
                         walk_blocks=WALK, jobs=1)
        result = run_sweep(spec)
        name = result.config_names()[0]
        manifest = load_manifest(str(manifest_dir() / "last_run.json"))
        components = manifest["components"][name]
        assert components["prefetchers"] == ["critical-nextline@1"]

    def test_single_scheme_table_has_no_speedup_column(self):
        spec = SweepSpec(apps=("Music",), schemes=("baseline",),
                         walk_blocks=WALK, jobs=1)
        table = run_sweep(spec).comparison_table()
        assert "baseline:cycles" in table
        assert "speedup" not in table

    def test_executor_provenance_reaches_manifest(self):
        spec = SweepSpec(apps=("Music", "Email"), schemes=("baseline",),
                         walk_blocks=WALK, jobs=2, executor="fleet")
        result = run_sweep(spec)
        assert result.cell("Music", "baseline", "google-tablet").cycles > 0
        manifest = load_manifest(str(manifest_dir() / "last_run.json"))
        dispatch = manifest["dispatch"]
        assert dispatch["executor"] == "fleet@1"
        assert dispatch["tasks"] == 2
        assert dispatch["workers"] == 2
        # Executor identity is provenance, not invocation: the same spec
        # run inline must produce the identical config_hash.
        clear_cache()
        inline = run_sweep(SweepSpec(
            apps=("Music", "Email"), schemes=("baseline",),
            walk_blocks=WALK, jobs=1, executor="inline",
        ))
        assert inline.grid == result.grid
        warm = load_manifest(str(manifest_dir() / "last_run.json"))
        assert warm["config_hash"] == manifest["config_hash"]

    def test_default_family_recorded_but_hash_blind(self):
        spec = SweepSpec(apps=("Music",), schemes=("baseline",),
                         walk_blocks=WALK, jobs=1)
        run_sweep(spec)
        manifest = load_manifest(str(manifest_dir() / "last_run.json"))
        assert manifest["workload_family"] == "default@1"
        # The default family never enters the invocation record: the
        # hash matches one computed without any family at all.
        from repro.cache import artifact_key
        invocation = {
            key: manifest[key]
            for key in ("apps", "schemes", "configs", "walk_blocks",
                        "seeds", "components")
        }
        assert manifest["config_hash"] \
            == artifact_key("run_manifest", **invocation)

    def test_non_default_family_changes_config_hash(self):
        base = SweepSpec(apps=("Music",), schemes=("baseline",),
                         walk_blocks=WALK, jobs=1)
        run_sweep(base)
        default_manifest = load_manifest(
            str(manifest_dir() / "last_run.json"))
        run_sweep(SweepSpec(apps=("Music",), schemes=("baseline",),
                            walk_blocks=WALK, jobs=1,
                            workload_family="netbound"))
        shaped_manifest = load_manifest(
            str(manifest_dir() / "last_run.json"))
        assert shaped_manifest["workload_family"] == "netbound@1"
        assert shaped_manifest["config_hash"] \
            != default_manifest["config_hash"]

    def test_family_sweep_matches_direct_context(self):
        spec = SweepSpec(apps=("Music",), schemes=("baseline", "critic"),
                         walk_blocks=WALK, jobs=1,
                         workload_family="phased")
        result = run_sweep(spec)
        from repro.experiments.runner import app_context
        ctx = app_context("Music", WALK, "phased")
        for scheme in ("baseline", "critic"):
            assert result.cell("Music", scheme, "google-tablet") \
                == ctx.stats(scheme)

    def test_warm_sweep_has_no_dispatch_record(self):
        spec = SweepSpec(apps=("Music",), schemes=("baseline",),
                         walk_blocks=WALK, jobs=1)
        run_sweep(spec)
        run_sweep(spec)  # every cell memoized: nothing dispatched
        manifest = load_manifest(str(manifest_dir() / "last_run.json"))
        assert "dispatch" not in manifest


class TestCli:
    def test_csv_parsing(self):
        args = build_parser().parse_args(
            ["--apps", "Music, Email", "--schemes", "baseline"])
        assert args.apps == ("Music", "Email")
        assert args.schemes == ("baseline",)

    def test_executor_flag_parsed(self):
        args = build_parser().parse_args(
            ["--apps", "Music", "--executor", "fleet"])
        assert args.executor == "fleet"
        assert build_parser().parse_args(["--apps", "Music"]) \
            .executor is None

    def test_unknown_executor_exits_2(self, capsys):
        code = main(["--apps", "Music", "--executor", "flete",
                     "--walk-blocks", str(WALK)])
        assert code == 2
        err = capsys.readouterr().err
        assert "did you mean" in err and "fleet" in err

    def test_list_components_mentions_every_registry(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for needle in ("google-tablet@1", "critic@1", "two-level@1",
                       "trrip@1", "critical-nextline@1", "fleet@1",
                       "trace-replay@1", "zipfian-footprint@1"):
            assert needle in out
        assert "workload families:" in out
        # list_components() is what --list prints
        assert list_components() in out

    def test_missing_apps_is_usage_error(self, capsys):
        assert main([]) == 2
        assert "--apps" in capsys.readouterr().err

    def test_unknown_component_exits_2(self, capsys):
        code = main(["--apps", "Music", "--schemes", "crtic",
                     "--walk-blocks", str(WALK)])
        assert code == 2
        err = capsys.readouterr().err
        assert "did you mean" in err and "critic" in err

    def test_end_to_end_prints_table(self, capsys):
        code = main(["--apps", "Music", "--schemes", "baseline,critic",
                     "--walk-blocks", str(WALK), "--jobs", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "critic:speedup" in out

    def test_workload_family_flag_end_to_end(self, capsys):
        code = main(["--apps", "Music", "--schemes", "baseline",
                     "--walk-blocks", str(WALK), "--jobs", "1",
                     "--workload-family", "vecmobile"])
        assert code == 0
        assert "baseline:cycles" in capsys.readouterr().out

    def test_workload_family_typo_exits_2_with_suggestion(self, capsys):
        code = main(["--apps", "Music", "--walk-blocks", str(WALK),
                     "--workload-family", "zipfain"])
        assert code == 2
        err = capsys.readouterr().err
        assert "did you mean" in err and "zipfian-footprint" in err
