"""Tests for CPU configurations (Table I + Fig 11 variants)."""

from repro.cpu import (
    GOOGLE_TABLET,
    HARDWARE_VARIANTS,
    config_2xfd,
    config_4x_icache,
    config_all_hw,
    config_backend_prio,
    config_critical_prefetch,
    config_efetch,
    config_perfect_br,
    format_table1,
)


class TestBaseline:
    def test_table1_values(self):
        cfg = GOOGLE_TABLET
        assert cfg.decode_width == 4
        assert cfg.rob_entries == 128
        assert cfg.bpu_entries == 4096
        assert cfg.memory.icache_bytes == 32 * 1024
        assert cfg.memory.icache_assoc == 2
        assert cfg.memory.dcache_bytes == 64 * 1024
        assert cfg.memory.icache_hit == 2
        assert cfg.memory.l2_bytes == 2 * 1024 * 1024
        assert cfg.memory.l2_assoc == 8

    def test_baseline_has_no_optimizations(self):
        cfg = GOOGLE_TABLET
        assert not cfg.critical_load_prefetch
        assert not cfg.backend_priority
        assert not cfg.efetch
        assert not cfg.perfect_branch

    def test_with_name(self):
        assert GOOGLE_TABLET.with_name("x").name == "x"


class TestVariants:
    def test_2xfd(self):
        cfg = config_2xfd()
        assert cfg.fetch_bytes_per_cycle \
            == 2 * GOOGLE_TABLET.fetch_bytes_per_cycle
        assert cfg.decode_width == 2 * GOOGLE_TABLET.decode_width
        assert cfg.memory.icache_hit == GOOGLE_TABLET.memory.icache_hit // 2

    def test_4x_icache(self):
        assert config_4x_icache().memory.icache_bytes == 128 * 1024

    def test_single_feature_flags(self):
        assert config_efetch().efetch
        assert config_perfect_br().perfect_branch
        assert config_backend_prio().backend_priority
        assert config_critical_prefetch().critical_load_prefetch

    def test_all_hw_combines(self):
        cfg = config_all_hw()
        assert cfg.memory.icache_bytes == 128 * 1024
        assert cfg.efetch and cfg.perfect_branch and cfg.backend_priority

    def test_variants_registry(self):
        assert set(HARDWARE_VARIANTS) == {
            "2xFD", "4xI$", "EFetch", "PerfectBr", "BackendPrio", "AllHW"}
        for name, make in HARDWARE_VARIANTS.items():
            assert make().name == name

    def test_variants_leave_baseline_untouched(self):
        config_all_hw()
        assert GOOGLE_TABLET.memory.icache_bytes == 32 * 1024


class TestRendering:
    def test_format_table1(self):
        text = format_table1()
        assert "128-entry ROB" in text
        assert "LPDDR3" in text
        assert "2MB 8-way" in text
