"""Tests for the typed metrics registry and the structured event stream."""

import io
import json
import os

import pytest

from repro import telemetry
from repro.telemetry import events, metrics
from repro.telemetry.metrics import (
    LATENCY_BUCKETS_S,
    MetricsError,
    MetricsRegistry,
    WIDTH_BUCKETS,
    parse_prometheus,
)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.reset()
    events.set_path("")
    yield
    telemetry.reset()
    events.set_path(None)


class TestRegistryInstruments:
    def test_counter_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        reg.inc("repro_t_total", outcome="ok")
        reg.inc("repro_t_total", outcome="ok")
        reg.inc("repro_t_total", 3, outcome="error")
        assert reg.value("repro_t_total", outcome="ok") == 2
        assert reg.value("repro_t_total", outcome="error") == 3
        assert reg.total("repro_t_total") == 5

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        reg.inc("repro_t_total", a="1", b="2")
        reg.inc("repro_t_total", b="2", a="1")
        assert reg.value("repro_t_total", a="1", b="2") == 2

    def test_gauge_keeps_last_value(self):
        reg = MetricsRegistry()
        reg.set_gauge("repro_workers", 4)
        reg.set_gauge("repro_workers", 2)
        assert reg.value("repro_workers") == 2

    def test_histogram_buckets_and_sum(self):
        reg = MetricsRegistry()
        reg.observe("repro_width", 3, buckets=WIDTH_BUCKETS)
        reg.observe("repro_width", 100, buckets=WIDTH_BUCKETS)
        family = reg.families()["repro_width"]
        cell = family.samples[()]
        # 3 lands in the le=4 bucket (index 2), 100 overflows to +Inf.
        assert cell[2] == 1
        assert cell[len(WIDTH_BUCKETS)] == 1
        assert cell[-2] == 2 and cell[-1] == 103

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.inc("repro_t_total")
        with pytest.raises(MetricsError):
            reg.set_gauge("repro_t_total", 1)

    def test_invalid_metric_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricsError):
            reg.inc("bad name")

    def test_counters_flat_prefix_filter(self):
        reg = MetricsRegistry()
        reg.inc("repro_cells_total", status="done")
        reg.inc("repro_other_total")
        flat = reg.counters_flat("repro_cells")
        assert flat == {"repro_cells_total{status=done}": 1}


class TestSnapshotMerge:
    def test_counters_sum_histograms_sum_gauges_max(self):
        a = MetricsRegistry()
        a.inc("repro_t_total", 2, outcome="ok")
        a.set_gauge("repro_workers", 4)
        a.observe("repro_wall", 0.01)
        b = MetricsRegistry()
        b.merge(a.snapshot())
        b.merge(a.snapshot())
        b.set_gauge("repro_workers", 1)
        b.merge(a.snapshot())
        assert b.value("repro_t_total", outcome="ok") == 6
        assert b.value("repro_workers") == 4  # max, not last
        cell = b.families()["repro_wall"].samples[()]
        assert cell[-2] == 3

    def test_merge_is_order_independent(self):
        parts = []
        for i in range(3):
            reg = MetricsRegistry()
            reg.inc("repro_t_total", i + 1, shard=str(i))
            # binary-exact values so summation order can't perturb the sum
            reg.observe("repro_wall", 0.25 * (i + 1))
            reg.set_gauge("repro_workers", i)
            parts.append(reg.snapshot())
        fwd, rev = MetricsRegistry(), MetricsRegistry()
        for snap in parts:
            fwd.merge(snap)
        for snap in reversed(parts):
            rev.merge(snap)
        def canon(snap):
            # sample insertion order tracks merge order; values must not
            return {name: dict(fam, samples=sorted(fam["samples"]))
                    for name, fam in snap.items()}

        assert canon(fwd.snapshot()) == canon(rev.snapshot())

    def test_merge_skips_type_conflicts(self):
        a = MetricsRegistry()
        a.inc("repro_t_total", 5)
        b = MetricsRegistry()
        b.set_gauge("repro_t_total", 1)
        b.merge(a.snapshot())  # conflicting family skipped, not mangled
        assert b.value("repro_t_total") == 1

    def test_metrics_ride_the_span_snapshot_channel(self):
        metrics.REGISTRY.inc("repro_t_total", outcome="ok")
        snap = telemetry.snapshot()
        telemetry.reset()
        assert metrics.REGISTRY.total("repro_t_total") == 0
        telemetry.merge_snapshot(snap)
        telemetry.merge_snapshot(snap)
        assert metrics.REGISTRY.value("repro_t_total", outcome="ok") == 2

    def test_reset_clears_registry(self):
        metrics.REGISTRY.inc("repro_t_total")
        telemetry.reset()
        assert metrics.REGISTRY.total("repro_t_total") == 0


class TestPrometheusExposition:
    def test_render_and_parse_round_trip(self):
        reg = MetricsRegistry()
        reg.inc("repro_t_total", 2, help="Help text.", outcome="ok")
        reg.set_gauge("repro_workers", 3)
        reg.observe("repro_wall", 0.005, buckets=LATENCY_BUCKETS_S)
        text = reg.render_prometheus()
        assert "# HELP repro_t_total Help text." in text
        assert "# TYPE repro_t_total counter" in text
        assert "# TYPE repro_workers gauge" in text
        assert "# TYPE repro_wall histogram" in text
        parsed = parse_prometheus(text)
        assert parsed['repro_t_total{outcome="ok"}'] == 2
        assert parsed["repro_workers"] == 3
        assert parsed["repro_wall_count"] == 1
        assert parsed["repro_wall_sum"] == pytest.approx(0.005)

    def test_histogram_buckets_are_cumulative_with_inf(self):
        reg = MetricsRegistry()
        reg.observe("repro_width", 3, buckets=(1, 4, 8))
        reg.observe("repro_width", 100, buckets=(1, 4, 8))
        parsed = parse_prometheus(reg.render_prometheus())
        assert parsed['repro_width_bucket{le="1"}'] == 0
        assert parsed['repro_width_bucket{le="4"}'] == 1
        assert parsed['repro_width_bucket{le="8"}'] == 1
        assert parsed['repro_width_bucket{le="+Inf"}'] == 2


class TestManifestIntegration:
    def test_metrics_block_is_outside_config_hash(self, tmp_path,
                                                  monkeypatch):
        from repro.cache import reset_cache
        from repro.telemetry import manifest as tmanifest

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        reset_cache()
        kwargs = dict(apps=["Music"], schemes=["baseline"],
                      configs=["google-tablet"], walk_blocks=120,
                      seeds={"Music": 17}, wall_s=0.5)
        quiet = tmanifest.build_manifest("run_apps", **kwargs)
        metrics.REGISTRY.inc("repro_cells_total", 4, status="done")
        loud = tmanifest.build_manifest("run_apps", **kwargs)
        # telemetry is provenance, never identity
        assert quiet["config_hash"] == loud["config_hash"]
        assert quiet["metrics"] == {}
        assert "repro_cells_total" in loud["metrics"]
        reset_cache()

    def test_write_manifest_drops_prometheus_snapshot(self, tmp_path,
                                                      monkeypatch):
        from repro.cache import reset_cache
        from repro.telemetry import manifest as tmanifest

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        reset_cache()
        metrics.REGISTRY.inc("repro_cells_total", 2, status="done",
                             help="Sweep cells by status.")
        path = tmanifest.record_run(
            "run_apps", apps=["Music"], schemes=["baseline"],
            configs=["google-tablet"], walk_blocks=120,
            seeds={"Music": 17}, wall_s=0.5)
        exposition = (path.parent / tmanifest.METRICS).read_text()
        parsed = parse_prometheus(exposition)
        assert parsed['repro_cells_total{status="done"}'] == 2
        reset_cache()


class TestPerfShimRemoved:
    """Tombstone: ``repro.perf`` was a deprecated alias of
    :mod:`repro.telemetry` and has been deleted after a deprecation
    cycle.  These tests pin the removal so the name never silently
    comes back."""

    def test_importing_repro_perf_raises(self):
        with pytest.raises(ModuleNotFoundError):
            import repro.perf  # noqa: F401

    def test_no_in_repo_reference_to_perf_remains(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent / "src"
        offenders = []
        for path in root.rglob("*.py"):
            text = path.read_text()
            if "from repro import perf" in text \
                    or "import repro.perf" in text \
                    or "from repro.perf import" in text:
                offenders.append(str(path))
        assert offenders == []


class TestEventStream:
    def test_disabled_by_default_is_noop(self, tmp_path, monkeypatch):
        monkeypatch.delenv(events.ENV_EVENTS, raising=False)
        events.set_path(None)
        assert not events.enabled()
        events.emit("sweep.cell.done", app="Music")  # must not raise

    def test_emit_appends_jsonl_with_envelope(self, tmp_path):
        log = tmp_path / "events.jsonl"
        events.set_path(str(log))
        events.emit("sweep.cell.done", app="Music", instructions=42)
        events.emit("dispatch.quarantine", task="Music|google-tablet")
        records = list(events.iter_events(str(log)))
        assert [r["kind"] for r in records] == \
            ["sweep.cell.done", "dispatch.quarantine"]
        first = records[0]
        assert first["app"] == "Music" and first["instructions"] == 42
        assert first["pid"] == os.getpid()
        assert first["seq"] == 1 and records[1]["seq"] == 2
        assert isinstance(first["ts"], float)

    def test_env_knob_activates_stream(self, tmp_path, monkeypatch):
        log = tmp_path / "events.jsonl"
        events.set_path(None)
        monkeypatch.setenv(events.ENV_EVENTS, str(log))
        assert events.active_path() == str(log)
        events.emit("cache.hit", artifact="trace")
        assert len(list(events.iter_events(str(log)))) == 1

    def test_iter_events_skips_torn_lines(self):
        stream = io.StringIO(
            json.dumps({"kind": "a", "ts": 1.0}) + "\n"
            + '{"kind": "torn", "ts": 1.'  # no newline, mid-write
        )
        assert [r["kind"] for r in events.iter_events(stream)] == ["a"]

    def test_unwritable_sink_degrades_to_disabled(self, tmp_path):
        events.set_path(str(tmp_path))  # a directory: open() fails
        events.emit("sweep.cell.done")  # must not raise
        assert not events.enabled()


class TestLiveProgress:
    def test_summary_aggregation(self, tmp_path):
        from repro.telemetry.live import summarize

        log = tmp_path / "events.jsonl"
        events.set_path(str(log))
        events.emit("sweep.cell.done", instructions=100)
        events.emit("sweep.cell.done", instructions=50)
        events.emit("sweep.cell.cached")
        events.emit("dispatch.attempt", outcome="worker-died")
        events.emit("dispatch.attempt", outcome="ok")
        events.emit("dispatch.quarantine", task="t")
        events.emit("batch.fallback", reason="clpt")
        progress = summarize(str(log))
        assert progress.done == 2
        assert progress.instructions == 150
        assert progress.cached == 1
        assert progress.retried == 1
        assert progress.worker_deaths == 1
        assert progress.quarantined == 1
        assert progress.fallbacks == 1
        assert "cells 2 done" in progress.line()

    def test_live_cli_one_shot(self, tmp_path, capsys):
        from repro.telemetry.live import main

        log = tmp_path / "events.jsonl"
        events.set_path(str(log))
        events.emit("sweep.cell.done", instructions=7)
        events.set_path("")
        assert main([str(log)]) == 0
        out = capsys.readouterr().out
        assert "cells done" in out and "instructions" in out

    def test_live_cli_empty_log_exits_nonzero(self, tmp_path):
        from repro.telemetry.live import main

        log = tmp_path / "empty.jsonl"
        log.write_text("")
        assert main([str(log)]) == 1
