"""Tests for caches, DRAM, prefetchers, and the hierarchy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory import (
    Cache,
    CriticalLoadPrefetcher,
    Dram,
    DramTimings,
    EFetchPrefetcher,
    MemoryConfig,
    MemorySystem,
)


class TestCache:
    def test_miss_then_hit(self):
        cache = Cache("t", 1024, 2, 64, 1)
        assert not cache.lookup(0x1000)
        assert cache.lookup(0x1000)
        assert cache.stats.accesses == 2
        assert cache.stats.misses == 1

    def test_same_line_same_entry(self):
        cache = Cache("t", 1024, 2, 64, 1)
        cache.lookup(0x1000)
        assert cache.lookup(0x103F)  # same 64B line

    def test_lru_eviction(self):
        cache = Cache("t", 2 * 64, 2, 64, 1)  # 1 set, 2 ways
        cache.lookup(0x0)
        cache.lookup(0x1000)
        cache.lookup(0x0)        # touch 0 -> 0x1000 becomes LRU
        cache.lookup(0x2000)     # evicts 0x1000
        assert cache.lookup(0x0)
        assert not cache.lookup(0x1000)

    def test_probe_does_not_count(self):
        cache = Cache("t", 1024, 2, 64, 1)
        cache.probe(0x1000)
        assert cache.stats.accesses == 0

    def test_fill_installs_silently(self):
        cache = Cache("t", 1024, 2, 64, 1)
        cache.fill(0x1000)
        assert cache.stats.accesses == 0
        assert cache.lookup(0x1000)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache("t", 1000, 3, 64, 1)

    def test_miss_rate(self):
        cache = Cache("t", 1024, 2, 64, 1)
        assert cache.stats.miss_rate == 0.0
        cache.lookup(0)
        assert cache.stats.miss_rate == 1.0

    @given(st.lists(st.integers(min_value=0, max_value=1 << 20),
                    min_size=1, max_size=200))
    @settings(max_examples=25)
    def test_property_repeat_access_hits(self, addrs):
        """Accessing the same address twice in a row always hits."""
        cache = Cache("t", 4096, 4, 64, 1)
        for addr in addrs:
            cache.lookup(addr)
            assert cache.lookup(addr)

    @given(st.lists(st.integers(min_value=0, max_value=1 << 16),
                    min_size=1, max_size=300))
    @settings(max_examples=25)
    def test_property_occupancy_bounded(self, addrs):
        cache = Cache("t", 2048, 2, 64, 1)
        for addr in addrs:
            cache.lookup(addr)
        for ways in cache._sets:
            assert len(ways) <= cache.assoc


class TestDram:
    def test_row_hit_cheaper(self):
        dram = Dram()
        first = dram.access(0x1000)
        second = dram.access(0x1004)  # same row
        assert second < first
        assert dram.row_hits == 1

    def test_row_conflict_costs_precharge(self):
        timings = DramTimings()
        dram = Dram(timings)
        dram.access(0x0)
        # Same bank, different row: banks stride with ROW_BYTES
        conflict = dram.access(Dram.ROW_BYTES * Dram.NUM_RANKS
                               * Dram.BANKS_PER_RANK)
        assert conflict == (timings.t_overhead + timings.t_rp
                            + timings.t_rcd + timings.t_cl
                            + timings.t_burst)

    def test_streaming_hits_open_rows(self):
        dram = Dram()
        for k in range(64):
            dram.access(0x1000 + 64 * k)
        assert dram.row_hit_rate > 0.9


class TestCriticalLoadPrefetcher:
    def test_prefetch_after_confidence(self):
        pf = CriticalLoadPrefetcher(degree=1, confidence_needed=2)
        addrs = []
        for k in range(6):
            addrs = pf.observe(pc=0x100, addr=0x8000 + 64 * k,
                               critical=True)
        assert addrs == [0x8000 + 64 * 6]

    def test_non_critical_never_prefetches(self):
        pf = CriticalLoadPrefetcher()
        for k in range(8):
            assert pf.observe(0x100, 0x8000 + 64 * k, critical=False) == []

    def test_stride_change_resets_confidence(self):
        pf = CriticalLoadPrefetcher(degree=1, confidence_needed=2)
        for k in range(4):
            pf.observe(0x100, 0x8000 + 64 * k, critical=True)
        assert pf.observe(0x100, 0x9999 ^ 0x40, critical=True) == []

    def test_table_capacity_lru(self):
        pf = CriticalLoadPrefetcher(entries=4)
        for pc in range(10):
            pf.observe(pc, 0x8000, critical=True)
        assert len(pf._table) == 4

    def test_zero_stride_never_prefetches(self):
        pf = CriticalLoadPrefetcher()
        for _ in range(8):
            out = pf.observe(0x100, 0x8000, critical=True)
        assert out == []


class TestEFetch:
    def test_learns_repeating_call_pattern(self):
        pf = EFetchPrefetcher(lines_per_target=2)
        pattern = [100, 200, 300]
        hits = 0
        for _ in range(5):
            for target in pattern:
                lines = pf.observe_call(target)
                if lines and lines[0] == target:
                    hits += 1
        assert hits >= 3  # predicts correctly once trained

    def test_table_bounded(self):
        pf = EFetchPrefetcher(entries=8)
        for k in range(100):
            pf.observe_call(k)
        assert len(pf._table) <= 8


class TestMemorySystem:
    def test_load_hierarchy_latencies(self):
        mem = MemorySystem()
        cold = mem.load(0x8000)
        warm = mem.load(0x8000)
        assert warm == mem.config.dcache_hit
        assert cold > warm

    def test_ifetch_next_line_prefetch_hides_stream(self):
        mem = MemorySystem()
        line = mem.config.line_bytes
        mem.ifetch(0x1000, now=0)
        # The following lines were prefetched; with enough elapsed time
        # they cost only the hit latency.
        lat = mem.ifetch(0x1000 + line, now=100)
        assert lat == mem.config.icache_hit

    def test_ifetch_untimely_prefetch_pays_residual(self):
        mem = MemorySystem()
        line = mem.config.line_bytes
        mem.ifetch(0x1000, now=0)
        lat = mem.ifetch(0x1000 + line, now=1)
        assert mem.config.icache_hit < lat \
            <= mem.config.icache_hit + mem.config.l2_hit

    def test_store_cheap(self):
        mem = MemorySystem()
        assert mem.store(0x9000) == mem.config.dcache_hit

    def test_warm_installs_trace_lines(self):
        from repro.workloads import generate, get_profile
        wl = generate(get_profile("Music"), walk_blocks=60)
        mem = MemorySystem()
        mem.warm(wl.trace())
        entry = wl.trace().entries[-1]
        assert mem.icache.probe(entry.pc)

    def test_scaled_icache(self):
        config = MemoryConfig().scaled_icache(4)
        assert config.icache_bytes == 128 * 1024
