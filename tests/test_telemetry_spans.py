"""Tests for the hierarchical span / counter core of repro.telemetry."""

import io
import json
import time

import pytest

from repro import telemetry
from repro.telemetry import Span


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.reset()
    yield
    telemetry.reset()


class TestSpanTree:
    def test_nested_self_vs_cumulative(self):
        with telemetry.span("outer"):
            time.sleep(0.01)
            with telemetry.span("inner"):
                time.sleep(0.02)
        stats = telemetry.phase_stats()
        outer, inner = stats["outer"], stats["inner"]
        assert outer["calls"] == 1 and inner["calls"] == 1
        # outer's cumulative covers inner; its self time does not.
        assert outer["total_s"] >= inner["total_s"]
        assert outer["self_s"] == pytest.approx(
            outer["total_s"] - inner["total_s"], rel=0.05, abs=0.005)
        assert inner["self_s"] == pytest.approx(inner["total_s"])

    def test_recursive_same_name_self_does_not_double_count(self):
        started = time.perf_counter()
        with telemetry.phase("simulate"):
            with telemetry.phase("simulate"):
                with telemetry.phase("simulate"):
                    time.sleep(0.01)
        wall = time.perf_counter() - started
        stats = telemetry.phase_stats()["simulate"]
        assert stats["calls"] == 3
        # Cumulative triple-counts the nested time (legacy behaviour)...
        assert stats["total_s"] > 2 * 0.01
        # ...but self time stays within the real wall clock.
        assert stats["self_s"] <= wall * 1.05

    def test_span_yields_live_span_for_attrs(self):
        with telemetry.span("work", app="Music") as current:
            current.attrs["blocks"] = 120
        assert current.attrs == {"app": "Music", "blocks": 120}

    def test_spanned_decorator(self):
        @telemetry.spanned("decorated.run")
        def figure(x):
            return x * 2

        assert figure(21) == 42
        assert telemetry.phase_stats()["decorated.run"]["calls"] == 1

    def test_legacy_phases_shape(self):
        with telemetry.phase("generate"):
            pass
        snapshot = telemetry.phases()
        calls, total = snapshot["generate"]
        assert calls == 1 and total >= 0.0


class TestRetention:
    def test_trees_retained_only_when_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_PERF", raising=False)
        monkeypatch.delenv("REPRO_SPANS", raising=False)
        with telemetry.span("root"):
            pass
        assert telemetry.spans() == []

        monkeypatch.setenv("REPRO_SPANS", "1")
        with telemetry.span("root"):
            with telemetry.span("child"):
                pass
        roots = telemetry.spans()
        assert [r.name for r in roots] == ["root"]
        assert [c.name for c in roots[0].children] == ["child"]

    def test_dump_spans_jsonl(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPANS", "1")
        with telemetry.span("root", app="Music"):
            with telemetry.span("child"):
                pass
        buf = io.StringIO()
        assert telemetry.dump_spans(buf) == 1
        record = json.loads(buf.getvalue())
        assert record["name"] == "root"
        assert record["attrs"] == {"app": "Music"}
        assert record["children"][0]["name"] == "child"
        rebuilt = Span.from_dict(record)
        assert rebuilt.name == "root"
        assert rebuilt.children[0].name == "child"
        assert rebuilt.self_time <= rebuilt.cumulative


class TestSnapshotMerge:
    def test_counters_and_phases_merge(self):
        telemetry.count("cache.hit.stats", 3)
        with telemetry.phase("simulate"):
            pass
        snap = telemetry.snapshot()
        telemetry.reset()
        telemetry.count("cache.hit.stats", 1)
        telemetry.merge_snapshot(snap)
        telemetry.merge_snapshot(snap)
        assert telemetry.counters()["cache.hit.stats"] == 7
        assert telemetry.phase_stats()["simulate"]["calls"] == 2

    def test_merge_tags_worker_spans_with_pid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPANS", "1")
        with telemetry.span("worker-root"):
            pass
        snap = telemetry.snapshot()
        snap["pid"] = 4242
        telemetry.reset()
        telemetry.merge_snapshot(snap)
        (root,) = telemetry.spans()
        assert root.attrs["pid"] == 4242

    def test_merge_none_and_empty_are_noops(self):
        telemetry.merge_snapshot(None)
        telemetry.merge_snapshot({})
        assert telemetry.counters() == {}

    def test_legacy_two_field_phase_cells(self):
        # Snapshots from older writers may lack the self-time field.
        telemetry.merge_snapshot({"phases": {"simulate": [2, 1.5]}})
        stats = telemetry.phase_stats()["simulate"]
        assert stats["calls"] == 2
        assert stats["self_s"] == pytest.approx(1.5)


class TestReport:
    def test_report_has_self_column_and_counter(self):
        with telemetry.phase("fig10"):
            with telemetry.phase("simulate"):
                pass
        telemetry.count("cache.hit.trace")
        text = telemetry.report()
        assert "self" in text.splitlines()[1]
        assert "fig10" in text and "simulate" in text
        assert "cache.hit.trace" in text
