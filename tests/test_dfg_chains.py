"""Unit tests for IC / CritIC identification — including the paper's own
Fig. 2 worked example."""

import pytest

from repro.dfg import (
    Chain,
    Dfg,
    best_subchains,
    find_critics,
    iter_maximal_paths,
    make_chain,
)
from repro.isa import Instruction, Opcode
from repro.trace import Trace, TraceEntry


def alu(dest, *srcs):
    return Instruction(Opcode.ADD, dests=(dest,), srcs=srcs)


def trace_of(instrs):
    return Trace([
        TraceEntry(seq=i, instr=ins.with_uid(i), pc=0x1000 + 4 * i)
        for i, ins in enumerate(instrs)
    ])


def paper_fig2_dfg():
    """The paper's Fig 2 example, scaled to our register file.

    I0 produces a value consumed by I1..I10 (fanout 10); I10 similarly
    triggers I11..I20; I20 feeds I22 (high fanout).  The path
    I0 -> I10 -> I20 -> I22 is an IC; I0 -> I1 -> I21 is NOT because I21
    also depends on I11.
    """
    instrs = [alu(0, 6, 7)]                       # I0 (root, two producers)
    # I1..I9 consume I0 (single-source)  -> they are sole-dependents
    instrs += [alu(2, 0) for _ in range(9)]       # I1..I9
    instrs += [alu(1, 0)]                         # I10 reads I0
    instrs += [alu(3, 1)]                         # I11 reads I10
    instrs += [alu(4, 1) for _ in range(8)]       # I12..I19 read I10
    instrs += [alu(5, 1)]                         # I20 reads I10
    instrs += [alu(2, 0, 3)]                      # I21 reads I0?I11 (two)
    instrs += [alu(3, 5)]                         # I22 reads I20
    return Dfg(trace_of(instrs))


class TestSelfContainedness:
    def test_paper_ic_path_valid(self):
        dfg = paper_fig2_dfg()
        # I0 -> I10 -> I20 -> I22 (positions 0, 10, 20, 22)
        assert dfg.is_self_contained_path([0, 10, 20, 22])

    def test_paper_non_ic_path_invalid(self):
        dfg = paper_fig2_dfg()
        # I0 -> I1 -> I21 fails: I21 also depends on I11.
        assert not dfg.is_self_contained_path([0, 1, 21])

    def test_subpath_of_ic_is_ic(self):
        dfg = paper_fig2_dfg()
        assert dfg.is_self_contained_path([10, 20])
        assert dfg.is_self_contained_path([0, 10])

    def test_empty_path_invalid(self):
        dfg = paper_fig2_dfg()
        assert not dfg.is_self_contained_path([])

    def test_non_adjacent_members_invalid(self):
        dfg = paper_fig2_dfg()
        assert not dfg.is_self_contained_path([0, 20])


class TestMakeChain:
    def test_chain_record_fields(self):
        dfg = paper_fig2_dfg()
        chain = make_chain(dfg, [0, 10, 20, 22])
        assert chain.length == 4
        assert chain.spread == 22
        assert chain.uids == (0, 10, 20, 22)
        # I0 fanout 11 (I1..I9 + I10 + I21), I10 fanout 10, I20 1, I22 0
        assert chain.avg_fanout == pytest.approx((11 + 10 + 1 + 0) / 4)
        assert chain.thumb_encodable

    def test_invalid_path_rejected(self):
        dfg = paper_fig2_dfg()
        with pytest.raises(ValueError):
            make_chain(dfg, [0, 1, 21])

    def test_is_critical_threshold(self):
        dfg = paper_fig2_dfg()
        chain = make_chain(dfg, [0, 10])
        assert chain.avg_fanout == pytest.approx(10.5)
        assert chain.is_critical(8.0)
        assert not chain.is_critical(10.5)


class TestMaximalPaths:
    def test_paths_start_at_roots(self):
        dfg = paper_fig2_dfg()
        for path in iter_maximal_paths(dfg):
            assert len(dfg.producers[path[0]]) != 1

    def test_paths_are_self_contained(self):
        dfg = paper_fig2_dfg()
        for path in iter_maximal_paths(dfg):
            assert dfg.is_self_contained_path(path)

    def test_deep_path_found(self):
        dfg = paper_fig2_dfg()
        paths = list(iter_maximal_paths(dfg))
        assert any(set([0, 10, 20, 22]).issubset(set(p)) for p in paths)


class TestFindCritics:
    def test_non_overlapping(self):
        dfg = paper_fig2_dfg()
        chains = find_critics(dfg, threshold=3.0, max_len=5)
        used = set()
        for chain in chains:
            assert not used & set(chain.positions)
            used.update(chain.positions)

    def test_threshold_respected(self):
        dfg = paper_fig2_dfg()
        for chain in find_critics(dfg, threshold=5.0):
            assert chain.avg_fanout > 5.0

    def test_max_len_respected(self):
        dfg = paper_fig2_dfg()
        for chain in find_critics(dfg, threshold=1.0, max_len=3):
            assert chain.length <= 3

    def test_exact_len(self):
        dfg = paper_fig2_dfg()
        for chain in find_critics(dfg, threshold=1.0, exact_len=2):
            assert chain.length == 2

    def test_high_threshold_finds_nothing(self):
        dfg = paper_fig2_dfg()
        assert find_critics(dfg, threshold=1000.0) == []


class TestBestSubchains:
    def test_longest_qualifying_window_preferred(self):
        dfg = paper_fig2_dfg()
        paths = [p for p in iter_maximal_paths(dfg)
                 if set([0, 10, 20, 22]).issubset(set(p))]
        chains = best_subchains(dfg, paths[0], threshold=3.0, max_len=4)
        assert chains
        assert max(c.length for c in chains) >= 3
