"""Tests for the CritIC instrumentation pass: hoisting legality, format
switching, and semantic preservation."""

import pytest

from repro.compiler import (
    CriticPass,
    PassManager,
    conservative_oracle,
    region_oracle,
)
from repro.dfg import Dfg, find_critics
from repro.isa import Encoding, Instruction, MAX_CDP_COVER, Opcode
from repro.profiler import CriticRecord, find_critic_profile
from repro.trace import BasicBlock, Program, compute_producers, materialize
from repro.workloads import generate, get_profile


def alu(dest, *srcs, imm=None, uid=-1):
    return Instruction(Opcode.ADD, dests=(dest,), srcs=srcs, imm=imm,
                       uid=uid)


def chain_program():
    """Chain u0->u2->u4 interleaved with independent fillers."""
    instrs = [
        alu(0, 6, 7, uid=0),          # head
        alu(8, 9, uid=1),             # filler
        alu(1, 0, imm=3, uid=2),      # member
        alu(9, 8, uid=3),             # filler
        alu(2, 1, imm=5, uid=4),      # member
        alu(10, 2, uid=5),            # consumer
    ]
    return Program([BasicBlock(0, instrs)])


def record(uids, block_id=0):
    return CriticRecord(uids=tuple(uids), occurrences=5,
                        mean_avg_fanout=12.0, thumb_encodable=True,
                        block_id=block_id)


class TestRewrite:
    def test_members_hoisted_contiguously(self):
        result = PassManager([
            CriticPass([record([0, 2, 4])], mode="hoist")
        ]).run(chain_program())
        uids = [i.uid for i in result.program.block(0).instructions]
        assert uids[:3] == [0, 2, 4]
        assert set(uids) == {0, 1, 2, 3, 4, 5}

    def test_cdp_mode_inserts_switch_and_thumb(self):
        result = PassManager([
            CriticPass([record([0, 2, 4])], mode="cdp")
        ]).run(chain_program())
        instrs = result.program.block(0).instructions
        assert instrs[0].opcode is Opcode.CDP
        assert instrs[0].cdp_cover == 3
        for member in instrs[1:4]:
            assert member.encoding is Encoding.THUMB16
        assert instrs[4].encoding is Encoding.ARM32

    def test_branch_mode_brackets_chain(self):
        result = PassManager([
            CriticPass([record([0, 2, 4])], mode="branch")
        ]).run(chain_program())
        instrs = result.program.block(0).instructions
        assert instrs[0].opcode is Opcode.B
        assert instrs[0].encoding is Encoding.ARM32
        assert instrs[4].opcode is Opcode.B
        assert instrs[4].encoding is Encoding.THUMB16

    def test_long_chain_multiple_cdps(self):
        instrs = [alu(0, 6, 7, uid=0)]
        for k in range(1, 12):
            instrs.append(alu(k % 6, (k - 1) % 6, imm=1, uid=k))
        program = Program([BasicBlock(0, instrs)])
        result = PassManager([
            CriticPass([record(range(12))], ideal=True, mode="cdp")
        ]).run(program)
        out = result.program.block(0).instructions
        cdps = [i for i in out if i.opcode is Opcode.CDP]
        assert len(cdps) == 2  # 12 members: 9 + 3
        assert cdps[0].cdp_cover == MAX_CDP_COVER

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            CriticPass([], mode="teleport")


class TestLegality:
    def test_dependences_preserved_after_hoist(self):
        program = chain_program()
        walk = [0]
        before = materialize(program, walk)
        producers_before = compute_producers(before)

        result = PassManager([
            CriticPass([record([0, 2, 4])], mode="hoist")
        ]).run(program)
        after = materialize(result.program, walk)
        producers_after = compute_producers(after)

        # Map uid -> producer uids; must be identical before/after.
        def by_uid(trace, producers):
            out = {}
            for pos, entry in enumerate(trace.entries):
                out[entry.uid] = {
                    trace.entries[p].uid for p in producers[pos]
                }
            return out

        assert by_uid(before, producers_before) \
            == by_uid(after, producers_after)

    def test_war_hazard_blocks_hoist(self):
        # Filler at uid=1 READS r1; member uid=2 WRITES r1 and would be
        # hoisted above it -> WAR -> chain must be skipped.
        instrs = [
            alu(0, 6, 7, uid=0),
            alu(8, 1, uid=1),          # reads r1 (hazard)
            alu(1, 0, imm=3, uid=2),   # writes r1
        ]
        program = Program([BasicBlock(0, instrs)])
        result = PassManager([
            CriticPass([record([0, 2])], mode="hoist")
        ]).run(program)
        assert result.ctx.get("critic", "skipped-hazard") == 1
        uids = [i.uid for i in result.program.block(0).instructions]
        assert uids == [0, 1, 2]  # untouched

    def test_raw_hazard_blocks_hoist(self):
        # Filler WRITES r5; member READS r5 -> not self-contained.
        instrs = [
            alu(0, 6, 7, uid=0),
            alu(5, 9, uid=1),
            Instruction(Opcode.ADD, dests=(1,), srcs=(0, 5), uid=2),
        ]
        program = Program([BasicBlock(0, instrs)])
        result = PassManager([
            CriticPass([record([0, 2])], mode="hoist")
        ]).run(program)
        assert result.ctx.get("critic", "skipped-hazard") == 1

    def test_store_alias_blocks_load_hoist(self):
        instrs = [
            alu(0, 6, 7, uid=0),
            Instruction(Opcode.STR, srcs=(8, 9), uid=1),
            Instruction(Opcode.LDR, dests=(1,), srcs=(0,), uid=2),
        ]
        program = Program([BasicBlock(0, instrs)])
        result = PassManager([
            CriticPass([record([0, 2])], mode="hoist",
                       may_alias=conservative_oracle)
        ]).run(program)
        assert result.ctx.get("critic", "skipped-hazard") == 1

    def test_disjoint_regions_allow_load_hoist(self):
        from repro.trace import StridedPattern, TableMemoryModel
        memory = TableMemoryModel()
        memory.set_pattern(1, StridedPattern(0x9000, 4, 64))   # store
        memory.set_pattern(2, StridedPattern(0x1000, 4, 64))   # load
        instrs = [
            alu(0, 6, 7, uid=0),
            Instruction(Opcode.STR, srcs=(8, 9), uid=1),
            Instruction(Opcode.LDR, dests=(1,), srcs=(0,), uid=2),
        ]
        program = Program([BasicBlock(0, instrs)])
        result = PassManager([
            CriticPass([record([0, 2])], mode="hoist",
                       may_alias=region_oracle(memory))
        ]).run(program)
        assert result.ctx.get("critic", "chains") == 1

    def test_encodability_enforced_unless_ideal(self):
        instrs = [
            alu(0, 6, 7, uid=0),
            alu(12, 0, imm=3, uid=1),   # high register -> not encodable
        ]
        program = Program([BasicBlock(0, instrs)])
        strict = PassManager([
            CriticPass([record([0, 1])], mode="cdp")
        ]).run(program)
        assert strict.ctx.get("critic", "skipped-encoding") == 1

        ideal = PassManager([
            CriticPass([record([0, 1])], mode="cdp", ideal=True)
        ]).run(program)
        assert ideal.ctx.get("critic", "chains") == 1

    def test_overlapping_records_claimed_once(self):
        program = chain_program()
        result = PassManager([
            CriticPass([record([0, 2, 4]), record([2, 4])], mode="hoist")
        ]).run(program)
        assert result.ctx.get("critic", "chains") == 1
        assert result.ctx.get("critic", "skipped-overlap") == 1

    def test_missing_uids_skipped(self):
        program = chain_program()
        result = PassManager([
            CriticPass([record([0, 99])], mode="hoist")
        ]).run(program)
        assert result.ctx.get("critic", "skipped-missing") == 1


class TestEndToEnd:
    def test_real_workload_chains_survive_transform(self):
        wl = generate(get_profile("Maps"), walk_blocks=150)
        profile = find_critic_profile(wl.trace(), wl.program)
        records = profile.select_for_compiler(max_length=5)
        result = PassManager([
            CriticPass(records, mode="cdp",
                       may_alias=region_oracle(wl.memory))
        ]).run(wl.program)
        transformed = wl.trace_for(result.program)
        # The transformed stream executes the same app work.
        base_work = sum(
            1 for e in wl.trace() if e.instr.opcode is not Opcode.CDP)
        new_work = sum(
            1 for e in transformed if e.instr.opcode is not Opcode.CDP)
        assert base_work == new_work
        # Statically, exactly the pass-reported members are Thumb-encoded
        # (plus one CDP per chain, also laid out as a half-word).
        static_thumb = sum(
            1 for i in result.program
            if i.encoding is Encoding.THUMB16 and i.opcode is not Opcode.CDP
        )
        assert static_thumb == result.ctx.get("critic", "thumbed")
        # Dynamically, converted chains do execute.
        assert transformed.count_thumb() > 0
