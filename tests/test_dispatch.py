"""The dispatch subsystem: executors, retries, faults, quarantine.

Covers the executor contract (submission order, fail-fast, attempt
records), the retry policy and its env knobs, the seeded fault plan's
determinism, the wall-clock cell deadline, and each backend end-to-end —
including a fleet whose workers are killed, muted, and corrupted by the
fault injector and still produce correct results.
"""

import os
import pickle
import time

import pytest

from repro.dispatch import (
    Attempt,
    CellDeadlockError,
    CellTimeoutError,
    DispatchReport,
    FaultPlan,
    FaultSpecError,
    RetryPolicy,
    TaskFailedError,
    TaskResult,
    TaskSpec,
    cell_deadline,
)
from repro.dispatch.faults import KINDS, corrupt_bytes
from repro.dispatch.fleet import FleetExecutor
from repro.dispatch.inline import InlineExecutor
from repro.dispatch.pool import PoolExecutor
from repro.registry import EXECUTORS


def _pool_available() -> bool:
    from concurrent.futures import ProcessPoolExecutor
    try:
        with ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(int, "7").result() == 7
    except Exception:
        return False


# -- module-level task bodies (pickled by reference into workers) -------------


def _double(x):
    return 2 * x


def _boom(x):
    raise ValueError(f"task body exploded on {x}")


def _sleepy(seconds, x):
    time.sleep(seconds)
    return x


def _flaky(marker, x):
    """Fails until ``marker`` exists, then succeeds — a crash that a
    retry genuinely fixes, visible across process boundaries."""
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("seen")
        raise RuntimeError("first attempt always fails")
    return x


def _mode_kwarg(x, mode="remote"):
    """Reports which kwarg set it ran under (inline_kwargs override)."""
    return (mode, x)


FAST = RetryPolicy(timeout_s=30.0, max_attempts=3, backoff_base_s=0.01,
                   backoff_cap_s=0.05, heartbeat_s=0.1)


class TestFaultPlan:
    def test_parse_full_spec(self):
        plan = FaultPlan.parse("kill:0.3,drop:0.2,corrupt:0.1;seed=7")
        assert plan.rates == {"kill": 0.3, "drop": 0.2, "corrupt": 0.1}
        assert plan.seed == 7
        assert plan.spec == "kill:0.3,drop:0.2,corrupt:0.1;seed=7"
        assert plan

    def test_empty_spec_is_off(self):
        assert not FaultPlan.parse(None)
        assert not FaultPlan.parse("")
        assert not FaultPlan.parse("   ")

    def test_bare_kind_means_always(self):
        assert FaultPlan.parse("kill").rates == {"kill": 1.0}

    @pytest.mark.parametrize("spec", [
        "explode:0.5",            # unknown kind
        "kill:maybe",             # non-numeric probability
        "kill:1.5",               # probability out of range
        "kill:0.5;seed=x",        # non-integer seed
        "kill:0.5;sed=3",         # bad suffix
    ])
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(spec)

    def test_draw_is_deterministic(self):
        plan = FaultPlan.parse("kill:0.4,corrupt:0.4;seed=11")
        draws = [plan.draw("Music|google-tablet", attempt)
                 for attempt in range(1, 20)]
        again = [plan.draw("Music|google-tablet", attempt)
                 for attempt in range(1, 20)]
        assert draws == again
        # A different seed reshuffles the outcomes.
        other = FaultPlan.parse("kill:0.4,corrupt:0.4;seed=12")
        assert draws != [other.draw("Music|google-tablet", attempt)
                         for attempt in range(1, 20)]

    def test_at_most_one_fault_in_kinds_order(self):
        plan = FaultPlan.parse("kill:1.0,drop:1.0,corrupt:1.0;seed=1")
        assert plan.draw("any", 1) == "kill"
        assert KINDS.index("kill") < KINDS.index("corrupt")

    def test_zero_rate_never_fires(self):
        plan = FaultPlan.parse("kill:0.0;seed=5")
        assert all(plan.draw("t", a) is None for a in range(1, 50))

    def test_corrupt_bytes_breaks_pickle(self):
        payload = pickle.dumps({"cell": 42})
        mangled = corrupt_bytes(payload)
        assert mangled != payload
        with pytest.raises(Exception):
            pickle.loads(mangled)
        assert corrupt_bytes(b"") != b""


class TestRetryPolicy:
    def test_backoff_progression_and_cap(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_cap_s=0.3)
        assert policy.backoff(1) == 0.0
        assert policy.backoff(2) == pytest.approx(0.1)
        assert policy.backoff(3) == pytest.approx(0.2)
        assert policy.backoff(4) == pytest.approx(0.3)   # capped
        assert policy.backoff(9) == pytest.approx(0.3)

    def test_heartbeat_timeout_is_four_intervals(self):
        assert RetryPolicy(heartbeat_s=0.5).heartbeat_timeout_s \
            == pytest.approx(2.0)

    def test_from_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISPATCH_TIMEOUT", "12.5")
        monkeypatch.setenv("REPRO_DISPATCH_ATTEMPTS", "5")
        monkeypatch.setenv("REPRO_DISPATCH_BACKOFF", "0.5")
        monkeypatch.setenv("REPRO_DISPATCH_HEARTBEAT", "0.25")
        policy = RetryPolicy.from_env()
        assert policy.timeout_s == 12.5
        assert policy.max_attempts == 5
        assert policy.backoff_base_s == 0.5
        assert policy.heartbeat_s == 0.25

    def test_from_env_malformed_warns_and_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISPATCH_ATTEMPTS", "lots")
        with pytest.warns(RuntimeWarning, match="REPRO_DISPATCH_ATTEMPTS"):
            policy = RetryPolicy.from_env()
        assert policy.max_attempts == 3


class TestTaskSpec:
    def test_run_inline_merges_inline_kwargs(self):
        task = TaskSpec(id="t", fn=_mode_kwarg, args=(7,),
                        kwargs={"mode": "remote"},
                        inline_kwargs={"mode": "inline"})
        assert task.run_inline() == ("inline", 7)

    def test_effective_timeout_prefers_task_override(self):
        policy = RetryPolicy(timeout_s=600.0)
        assert TaskSpec(id="t", fn=_double).effective_timeout(policy) \
            == 600.0
        assert TaskSpec(id="t", fn=_double,
                        timeout_s=5.0).effective_timeout(policy) == 5.0


class TestCellDeadline:
    def test_timeout_names_the_cell(self):
        with pytest.raises(CellTimeoutError, match="Music.google-tablet"):
            with cell_deadline("Music|google-tablet", 0.2):
                time.sleep(5.0)

    def test_deadlock_is_wrapped_with_cell_id(self):
        from repro.cpu.pipeline import PipelineDeadlockError
        with pytest.raises(CellDeadlockError,
                           match="Email.2xFD") as excinfo:
            with cell_deadline("Email|2xFD", None):
                raise PipelineDeadlockError("stuck at cycle 17")
        assert isinstance(excinfo.value.__cause__, PipelineDeadlockError)
        assert excinfo.value.task_id == "Email|2xFD"

    def test_clean_body_restores_timer(self):
        import signal
        with cell_deadline("t", 30.0):
            pass
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)


class TestInlineExecutor:
    def test_results_in_submission_order(self):
        ex = InlineExecutor(policy=FAST)
        for i in range(5):
            ex.submit(TaskSpec(id=f"t{i}", fn=_double, args=(i,)))
        results = ex.drain()
        assert [r.task_id for r in results] == [f"t{i}" for i in range(5)]
        assert [r.value for r in results] == [0, 2, 4, 6, 8]
        assert all(r.ok and len(r.attempts) == 1 for r in results)
        assert all(r.attempts[0].worker == "inline" for r in results)
        ex.shutdown()

    def test_fail_fast_skips_later_tasks(self):
        ex = InlineExecutor(policy=FAST)
        ex.submit(TaskSpec(id="ok", fn=_double, args=(1,)))
        ex.submit(TaskSpec(id="bad", fn=_boom, args=(2,)))
        ex.submit(TaskSpec(id="never", fn=_double, args=(3,)))
        results = ex.drain()
        assert results[0].ok
        assert not results[1].ok
        assert results[1].attempts[0].outcome == "error"
        assert results[2].attempts[0].outcome == "skipped"
        with pytest.raises(ValueError, match="exploded on 2"):
            results[1].raise_error()

    def test_timeout_attempt_recorded(self):
        ex = InlineExecutor(policy=FAST)
        ex.submit(TaskSpec(id="slow", fn=_sleepy, args=(5.0, 1),
                           timeout_s=0.2))
        results = ex.drain()
        assert results[0].attempts[0].outcome == "timeout"
        with pytest.raises(CellTimeoutError):
            results[0].raise_error()


class TestPoolExecutor:
    pytestmark = pytest.mark.skipif(
        not _pool_available(), reason="process pool unavailable")

    def test_batch_matches_inline(self):
        ex = PoolExecutor(jobs=2, policy=FAST)
        for i in range(4):
            ex.submit(TaskSpec(id=f"t{i}", fn=_double, args=(i,)))
        results = ex.drain()
        ex.shutdown()
        assert [r.value for r in results] == [0, 2, 4, 6]
        assert all(r.ok and not r.quarantined for r in results)

    def test_retry_fixes_flaky_task(self, tmp_path):
        ex = PoolExecutor(jobs=2, policy=FAST)
        marker = str(tmp_path / "flaky-marker")
        ex.submit(TaskSpec(id="flaky", fn=_flaky, args=(marker, 99)))
        results = ex.drain()
        ex.shutdown()
        assert results[0].ok
        assert results[0].value == 99
        assert results[0].retries == 1
        assert [a.outcome for a in results[0].attempts] == ["error", "ok"]

    def test_poison_task_quarantines_with_original_error(self):
        ex = PoolExecutor(jobs=2, policy=FAST)
        ex.submit(TaskSpec(id="poison", fn=_boom, args=(7,)))
        results = ex.drain()
        ex.shutdown()
        result = results[0]
        assert result.quarantined
        assert not result.ok
        # max_attempts in the pool, then the inline quarantine attempt.
        assert len(result.attempts) == FAST.max_attempts + 1
        assert result.attempts[-1].worker == "inline"
        with pytest.raises(ValueError, match="exploded on 7"):
            result.raise_error()


class TestFleetExecutor:
    def _drain(self, tasks, policy=FAST, jobs=2, faults=None,
               monkeypatch=None):
        if faults is not None:
            monkeypatch.setenv("REPRO_DISPATCH_FAULTS", faults)
        else:
            os.environ.pop("REPRO_DISPATCH_FAULTS", None)
        ex = FleetExecutor(jobs=jobs, policy=policy)
        for task in tasks:
            ex.submit(task)
        try:
            return ex.drain()
        finally:
            ex.shutdown()

    def test_batch_matches_inline(self):
        results = self._drain([
            TaskSpec(id=f"t{i}", fn=_double, args=(i,)) for i in range(4)
        ])
        assert [r.value for r in results] == [0, 2, 4, 6]
        assert all(r.ok and not r.quarantined for r in results)
        assert all(a.worker.startswith("fleet-")
                   for r in results for a in r.attempts)

    def test_kill_fault_requeues_and_quarantines(self, monkeypatch):
        policy = RetryPolicy(timeout_s=30.0, max_attempts=2,
                             backoff_base_s=0.01, backoff_cap_s=0.05,
                             heartbeat_s=0.1)
        results = self._drain(
            [TaskSpec(id="victim", fn=_double, args=(21,))],
            policy=policy, faults="kill:1.0;seed=3",
            monkeypatch=monkeypatch,
        )
        result = results[0]
        # Every fleet attempt was SIGKILLed; the quarantine fallback
        # (which injects nothing) still produced the value.
        assert result.ok
        assert result.value == 42
        assert result.quarantined
        fleet_outcomes = {a.outcome for a in result.attempts
                          if a.worker.startswith("fleet-")}
        assert fleet_outcomes <= {"worker-died", "no-heartbeat", "lost"}
        assert result.attempts[-1].worker == "inline"
        assert result.attempts[-1].outcome == "ok"

    def test_drop_fault_records_lost_attempts(self, monkeypatch):
        policy = RetryPolicy(timeout_s=30.0, max_attempts=2,
                             backoff_base_s=0.01, backoff_cap_s=0.05,
                             heartbeat_s=0.1)
        results = self._drain(
            [TaskSpec(id="mute", fn=_double, args=(5,))],
            policy=policy, faults="drop:1.0;seed=3",
            monkeypatch=monkeypatch,
        )
        result = results[0]
        assert result.ok and result.value == 10 and result.quarantined
        assert any(a.outcome == "lost" for a in result.attempts)

    def test_corrupt_fault_is_retried_not_fatal(self, monkeypatch):
        policy = RetryPolicy(timeout_s=30.0, max_attempts=2,
                             backoff_base_s=0.01, backoff_cap_s=0.05,
                             heartbeat_s=0.1)
        results = self._drain(
            [TaskSpec(id="garbled", fn=_double, args=(8,))],
            policy=policy, faults="corrupt:1.0;seed=3",
            monkeypatch=monkeypatch,
        )
        result = results[0]
        assert result.ok and result.value == 16 and result.quarantined
        assert any(a.outcome == "corrupt" for a in result.attempts)

    def test_poison_task_fails_with_traceback_text(self):
        policy = RetryPolicy(timeout_s=30.0, max_attempts=2,
                             backoff_base_s=0.01, backoff_cap_s=0.05,
                             heartbeat_s=0.1)
        results = self._drain(
            [TaskSpec(id="poison", fn=_boom, args=(3,))], policy=policy,
        )
        result = results[0]
        assert not result.ok
        assert result.quarantined
        with pytest.raises(ValueError, match="exploded on 3"):
            result.raise_error()


class TestDispatchReport:
    def test_to_dict_aggregates(self):
        ok = TaskResult(task_id="a", value=1, attempts=[
            Attempt(index=1, worker="fleet-0", outcome="ok", wall_s=0.5),
        ])
        retried = TaskResult(task_id="b", value=2, attempts=[
            Attempt(index=1, worker="fleet-1", outcome="worker-died",
                    error="boom"),
            Attempt(index=2, worker="fleet-2", outcome="timeout",
                    error="slow"),
            Attempt(index=3, worker="inline", outcome="ok"),
        ], quarantined=True)
        report = DispatchReport(executor="fleet@1", workers=2,
                                results=[ok, retried],
                                faults="kill:0.3;seed=1")
        record = report.to_dict()
        assert record["executor"] == "fleet@1"
        assert record["tasks"] == 2
        assert record["attempts"] == 4
        assert record["retries"] == 2
        assert record["timeouts"] == 1
        assert record["quarantined"] == ["b"]
        assert record["faults"] == "kill:0.3;seed=1"
        # Only tasks with retries or failures carry full attempt logs.
        assert set(record["task_attempts"]) == {"b"}

    def test_task_failed_error_carries_task_id(self):
        result = TaskResult(task_id="cell", error="remote traceback")
        with pytest.raises(TaskFailedError) as excinfo:
            result.raise_error()
        assert excinfo.value.task_id == "cell"


class TestDispatchMetamorphic:
    def test_grid_identical_across_backends(self):
        """The fuzzer's dispatch property: one grid under inline, pool,
        and fleet-with-faults produces identical SimStats and identical
        manifest config hashes."""
        import random

        from repro.validate.fuzz import FuzzResult, dispatch_metamorphic

        result = FuzzResult()
        report = dispatch_metamorphic(random.Random(5), result,
                                      walk_blocks=60)
        assert report.ok, report.summary()
        assert result.properties_checked >= 6


class TestExecutorRegistry:
    def test_builtins_registered(self):
        assert set(EXECUTORS.names()) >= {"inline", "pool", "fleet"}
        assert EXECUTORS.identity("fleet") == "fleet@1"
        for name in ("inline", "pool", "fleet"):
            ex = EXECUTORS.create(name, jobs=1, policy=FAST)
            assert ex.name == name
            ex.shutdown()

    def test_unknown_executor_gets_did_you_mean(self):
        from repro.registry import RegistryError
        with pytest.raises(RegistryError, match="fleet"):
            EXECUTORS.entry("flete")
