"""Tests for trace serialization."""

import io

import pytest

from repro.trace.trace_io import (
    HEADER,
    TraceFormatError,
    dump_trace,
    dump_trace_to_path,
    load_trace,
    load_trace_from_path,
)
from repro.workloads import generate, get_profile


@pytest.fixture(scope="module")
def trace():
    return generate(get_profile("Email"), walk_blocks=60).trace()


class TestRoundTrip:
    def test_full_round_trip(self, trace):
        buffer = io.StringIO()
        count = dump_trace(trace, buffer)
        assert count == len(trace)
        buffer.seek(0)
        loaded = load_trace(buffer)
        assert len(loaded) == len(trace)
        assert loaded.name == trace.name
        assert loaded.program_name == trace.program_name
        for a, b in zip(trace, loaded):
            assert a.seq == b.seq
            assert a.uid == b.uid
            assert a.pc == b.pc
            assert a.mem_addr == b.mem_addr
            assert a.taken == b.taken
            assert a.instr.signature() == b.instr.signature()
            assert a.instr.encoding == b.instr.encoding

    def test_dependences_survive_round_trip(self, trace):
        from repro.trace import compute_producers
        buffer = io.StringIO()
        dump_trace(trace, buffer)
        buffer.seek(0)
        loaded = load_trace(buffer)
        assert compute_producers(trace) == compute_producers(loaded)

    def test_path_helpers(self, trace, tmp_path):
        path = tmp_path / "trace.tsv"
        dump_trace_to_path(trace, str(path))
        loaded = load_trace_from_path(str(path))
        assert len(loaded) == len(trace)

    def test_loaded_trace_simulates_identically(self, trace):
        from repro.cpu import simulate
        buffer = io.StringIO()
        dump_trace(trace, buffer)
        buffer.seek(0)
        loaded = load_trace(buffer)
        assert simulate(trace).cycles == simulate(loaded).cycles


class TestCdpAndThumbRoundTrip:
    """A CritIC-compiled trace (CDP markers + Thumb-converted sizes) must
    survive dump/load exactly — the artifact cache stores scheme traces
    this way and re-simulates them expecting bit-identical stats."""

    @pytest.fixture(scope="class")
    def scheme_trace(self):
        from repro.compiler import CriticPass, PassManager, region_oracle
        from repro.profiler import FinderConfig, find_critic_profile
        workload = generate(get_profile("Email"), walk_blocks=60)
        trace = workload.trace()
        profile = find_critic_profile(
            trace, workload.program, FinderConfig(), app_name="Email",
        )
        records = profile.select_for_compiler(max_length=5)
        result = PassManager([
            CriticPass(records, mode="cdp",
                       may_alias=region_oracle(workload.memory)),
        ]).run(workload.program)
        return workload.trace_for(result.program)

    def test_trace_contains_cdp_and_thumb(self, scheme_trace):
        assert any(e.instr.cdp_cover is not None for e in scheme_trace)
        assert any(e.instr.size_bytes == 2 for e in scheme_trace)

    def test_cdp_markers_and_sizes_round_trip(self, scheme_trace):
        buffer = io.StringIO()
        dump_trace(scheme_trace, buffer)
        buffer.seek(0)
        loaded = load_trace(buffer)
        assert len(loaded) == len(scheme_trace)
        for a, b in zip(scheme_trace, loaded):
            assert a.instr.cdp_cover == b.instr.cdp_cover
            assert a.instr.size_bytes == b.instr.size_bytes
            assert a.instr.encoding == b.instr.encoding
            assert a.instr.signature() == b.instr.signature()

    def test_loaded_scheme_trace_simulates_identically(self, scheme_trace):
        import dataclasses
        from repro.cpu import simulate
        buffer = io.StringIO()
        dump_trace(scheme_trace, buffer)
        buffer.seek(0)
        loaded = load_trace(buffer)
        assert dataclasses.asdict(simulate(scheme_trace)) \
            == dataclasses.asdict(simulate(loaded))


class TestErrors:
    def test_bad_header(self):
        with pytest.raises(TraceFormatError, match="bad header"):
            load_trace(io.StringIO("not a trace\n"))

    def test_wrong_field_count(self):
        text = HEADER + "\n0\t1\t0x10\n"
        with pytest.raises(TraceFormatError, match="6 tab-separated"):
            load_trace(io.StringIO(text))

    def test_bad_assembly(self):
        text = HEADER + "\n0\t1\t0x10\t-\t-\tFROB R1\n"
        with pytest.raises(TraceFormatError):
            load_trace(io.StringIO(text))

    def test_blank_and_comment_lines_skipped(self):
        text = HEADER + "\n# name=x\n\n0\t0\t0x10\t-\t-\tNOP\n"
        loaded = load_trace(io.StringIO(text))
        assert len(loaded) == 1
        assert loaded.name == "x"
