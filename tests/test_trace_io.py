"""Tests for trace serialization."""

import io

import pytest

from repro.trace.trace_io import (
    HEADER,
    TraceFormatError,
    dump_trace,
    dump_trace_to_path,
    load_trace,
    load_trace_from_path,
)
from repro.workloads import generate, get_profile


@pytest.fixture(scope="module")
def trace():
    return generate(get_profile("Email"), walk_blocks=60).trace()


class TestRoundTrip:
    def test_full_round_trip(self, trace):
        buffer = io.StringIO()
        count = dump_trace(trace, buffer)
        assert count == len(trace)
        buffer.seek(0)
        loaded = load_trace(buffer)
        assert len(loaded) == len(trace)
        assert loaded.name == trace.name
        assert loaded.program_name == trace.program_name
        for a, b in zip(trace, loaded):
            assert a.seq == b.seq
            assert a.uid == b.uid
            assert a.pc == b.pc
            assert a.mem_addr == b.mem_addr
            assert a.taken == b.taken
            assert a.instr.signature() == b.instr.signature()
            assert a.instr.encoding == b.instr.encoding

    def test_dependences_survive_round_trip(self, trace):
        from repro.trace import compute_producers
        buffer = io.StringIO()
        dump_trace(trace, buffer)
        buffer.seek(0)
        loaded = load_trace(buffer)
        assert compute_producers(trace) == compute_producers(loaded)

    def test_path_helpers(self, trace, tmp_path):
        path = tmp_path / "trace.tsv"
        dump_trace_to_path(trace, str(path))
        loaded = load_trace_from_path(str(path))
        assert len(loaded) == len(trace)

    def test_loaded_trace_simulates_identically(self, trace):
        from repro.cpu import simulate
        buffer = io.StringIO()
        dump_trace(trace, buffer)
        buffer.seek(0)
        loaded = load_trace(buffer)
        assert simulate(trace).cycles == simulate(loaded).cycles


class TestErrors:
    def test_bad_header(self):
        with pytest.raises(TraceFormatError, match="bad header"):
            load_trace(io.StringIO("not a trace\n"))

    def test_wrong_field_count(self):
        text = HEADER + "\n0\t1\t0x10\n"
        with pytest.raises(TraceFormatError, match="6 tab-separated"):
            load_trace(io.StringIO(text))

    def test_bad_assembly(self):
        text = HEADER + "\n0\t1\t0x10\t-\t-\tFROB R1\n"
        with pytest.raises(TraceFormatError):
            load_trace(io.StringIO(text))

    def test_blank_and_comment_lines_skipped(self):
        text = HEADER + "\n# name=x\n\n0\t0\t0x10\t-\t-\tNOP\n"
        loaded = load_trace(io.StringIO(text))
        assert len(loaded) == 1
        assert loaded.name == "x"
