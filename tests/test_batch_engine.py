"""Tests for the batched lockstep simulation engine (``repro.cpu.batch``).

The engine's contract is *bit-identity*: a batch must produce exactly
the ``SimStats`` the inline simulator produces cell by cell, whatever
mix of fast-path and fallback cells the batch contains.  These tests
exercise that contract on small grids, plus the memoization-sharing and
heterogeneous-grouping guarantees, engine selection, and the loud
numpy error.  The full 56-cell golden comparison runs in CI under
``REPRO_SIM_ENGINE=batch`` (the ``batch-smoke`` job).
"""

import sys

import pytest

from repro import telemetry
from repro.cache import reset_cache
from repro.cpu import batch as batch_mod
from repro.cpu import pipeline
from repro.cpu.batch import last_batch_report, simulate_batch
from repro.cpu.config import (
    GOOGLE_TABLET,
    config_backend_prio,
    config_critical_prefetch,
    config_efetch,
    config_perfect_br,
)
from repro.cpu.pipeline import simulate
from repro.experiments import runner
from repro.registry import PREFETCHERS, SIMULATORS, RegistryError
from repro.registry.protocols import PrefetcherBase
from repro.telemetry.manifest import LAST_RUN, load_manifest, manifest_dir
from repro.trace.dynamic import Trace

WALK = 100


@pytest.fixture(autouse=True)
def _fresh_state(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
    reset_cache()
    runner.clear_cache()
    yield
    runner.clear_cache()
    reset_cache()


def _fresh_trace(name="Music", blocks=WALK):
    """A ``Trace`` object no prior test memoized against.

    The weak memos (``pipeline._trace_tables``, ``batch._profiles``) are
    keyed by Trace identity; copying the entries into a new object gives
    each test a clean memoization slate.
    """
    src = runner.app_context(name, blocks).trace()
    return Trace(src.entries, name=src.name, program_name=src.program_name)


def _inline(trace, config, **kwargs):
    return simulate(trace, config, engine="inline", **kwargs)


class TestBitIdentity:
    def test_batch_matches_inline_grid(self):
        trace = _fresh_trace()
        configs = [GOOGLE_TABLET, config_efetch(), config_perfect_br(),
                   config_backend_prio()]
        batch = simulate_batch(trace, configs)
        for config, stats in zip(configs, batch):
            assert stats.to_dict() == _inline(trace, config).to_dict(), \
                config.name
        report = last_batch_report()
        assert report["width"] == len(configs)
        assert report["fast"] == len(configs)
        assert report["fallbacks"] == []

    def test_python_kernel_matches_selected_kernel(self, monkeypatch):
        trace = _fresh_trace()
        configs = [GOOGLE_TABLET, config_efetch()]
        default = [s.to_dict() for s in simulate_batch(trace, configs)]
        monkeypatch.setenv("REPRO_BATCH_CKERNEL", "py")
        forced = simulate_batch(trace, configs)
        assert last_batch_report()["kernel"] == "py"
        assert [s.to_dict() for s in forced] == default

    def test_batch_counts_telemetry(self):
        trace = _fresh_trace()
        telemetry.reset()
        stats = simulate_batch(trace, [GOOGLE_TABLET, config_efetch()])
        counts = telemetry.counters()
        assert counts["simulate.batch.cells"] == 2
        assert counts["simulate.batch.instructions"] == \
            sum(s.instructions for s in stats)


class TestMemoizationSharing:
    def test_trace_tables_built_once_and_shared(self, monkeypatch):
        """Satellite: ``_TraceTables`` are built once per trace, shared
        by every cell of a batch, and reused by a later inline run."""
        trace = _fresh_trace()
        builds = []
        real = pipeline._TraceTables

        class Counting(real):
            def __init__(self, t):
                builds.append(t)
                super().__init__(t)

        monkeypatch.setattr(pipeline, "_TraceTables", Counting)
        batch = simulate_batch(
            trace, [GOOGLE_TABLET, config_efetch(), config_backend_prio()])
        assert len(builds) == 1
        tables = pipeline._tables_for(trace)

        # Batch-then-inline on the same Trace: no rebuild, same object,
        # identical stats.
        inline_stats = _inline(trace, GOOGLE_TABLET)
        assert len(builds) == 1
        assert pipeline._tables_for(trace) is tables
        assert inline_stats.to_dict() == batch[0].to_dict()

    def test_profiles_shared_within_and_across_batches(self):
        trace = _fresh_trace()
        configs = [GOOGLE_TABLET, config_backend_prio(), config_efetch()]
        simulate_batch(trace, configs)
        memo = batch_mod._profiles[trace]
        bp_keys = [k for k in memo if k[0] == "bp"]
        mem_keys = [k for k in memo if k[0] == "mem"]
        # All three configs share one branch profile; google-tablet and
        # backend-prio share a memory profile, efetch gets its own.
        assert len(bp_keys) == 1
        assert len(mem_keys) == 2
        # A second batch over the same trace is a pure memo hit.
        simulate_batch(trace, configs)
        assert len(batch_mod._profiles[trace]) == len(bp_keys) + \
            len(mem_keys)


class _LoadSpy(PrefetcherBase):
    """Custom registry prefetcher that observes loads (never issues):
    the batch engine cannot vectorize it and must fall back inline."""

    name = "load-spy"

    def __init__(self):
        self.issued = 0

    def observe_load(self, pc, addr, critical):
        return []


class TestHeterogeneousGrouping:
    def test_mixed_traces_and_custom_prefetcher_match_inline(
            self, tmp_path, monkeypatch):
        """Satellite: a sweep mixing two traces and a non-vectorizable
        custom prefetcher splits into per-trace batch groups plus inline
        fallbacks, and matches a pure-inline sweep bitwise — including
        the manifest ``config_hash``."""
        apps = ("Music", "Email")
        configs = (GOOGLE_TABLET,
                   GOOGLE_TABLET.with_components(prefetchers=("load-spy",)))
        grids = {}
        hashes = {}
        identities = {}
        with PREFETCHERS.scoped("load-spy", lambda config: _LoadSpy()):
            for engine in ("batch", "inline"):
                # Private cache per leg: the second leg must recompute,
                # not read the first leg's artifacts.
                monkeypatch.setenv("REPRO_CACHE_DIR",
                                   str(tmp_path / engine))
                reset_cache()
                runner.clear_cache()
                grids[engine] = runner.run_apps(
                    apps, schemes=("baseline",), jobs=1, configs=configs,
                    walk_blocks=WALK, engine=engine,
                )
                if engine == "batch":
                    report = last_batch_report()
                manifest = load_manifest(str(manifest_dir() / LAST_RUN))
                hashes[engine] = manifest["config_hash"]
                identities[engine] = manifest["engine"]

        for app in apps:
            for key, stats in grids["inline"][app].items():
                assert grids["batch"][app][key].to_dict() == \
                    stats.to_dict(), (app, key)
        # Engine identity is recorded in the manifest but excluded from
        # the config hash (engines are bit-identical provenance).
        assert hashes["batch"] == hashes["inline"]
        assert identities["batch"] == "batch@1"
        assert identities["inline"] == "inline@1"
        # The batch groups really did exist — and the custom prefetcher
        # cell really did take the inline fallback.
        assert report["width"] == len(configs)
        assert report["fast"] == 1
        [(config_name, reason)] = report["fallbacks"]
        assert config_name == configs[1].name
        assert "load-observing" in reason


class TestFallbacks:
    def test_max_cycles_falls_back_bit_identically(self):
        trace = _fresh_trace()
        batch, = simulate_batch(trace, [GOOGLE_TABLET], max_cycles=500)
        assert last_batch_report()["fallbacks"] == \
            [(GOOGLE_TABLET.name, "max-cycles")]
        assert batch.to_dict() == \
            _inline(trace, GOOGLE_TABLET, max_cycles=500).to_dict()

    def test_cold_start_falls_back_bit_identically(self):
        trace = _fresh_trace()
        batch, = simulate_batch(trace, [GOOGLE_TABLET], warm=False)
        assert last_batch_report()["fallbacks"] == \
            [(GOOGLE_TABLET.name, "cold-start")]
        assert batch.to_dict() == \
            _inline(trace, GOOGLE_TABLET, warm=False).to_dict()

    def test_load_observing_prefetcher_falls_back(self):
        trace = _fresh_trace()
        config = config_critical_prefetch()
        batch, = simulate_batch(trace, [config])
        [(name, reason)] = last_batch_report()["fallbacks"]
        assert name == config.name
        assert "load-observing" in reason
        assert batch.to_dict() == _inline(trace, config).to_dict()


class TestEngineSelection:
    def test_registry_lists_both_engines(self):
        assert "inline" in SIMULATORS.names()
        assert "batch" in SIMULATORS.names()
        assert SIMULATORS.identity("batch") == "batch@1"

    def test_engine_kwarg(self):
        trace = _fresh_trace()
        assert simulate(trace, GOOGLE_TABLET, engine="batch").to_dict() \
            == _inline(trace, GOOGLE_TABLET).to_dict()

    def test_engine_env(self, monkeypatch):
        trace = _fresh_trace()
        baseline = _inline(trace, GOOGLE_TABLET).to_dict()
        monkeypatch.setenv("REPRO_SIM_ENGINE", "batch")
        assert simulate(trace, GOOGLE_TABLET).to_dict() == baseline
        # The kwarg wins over the env.
        assert simulate(
            trace, GOOGLE_TABLET, engine="inline").to_dict() == baseline

    def test_unknown_engine_fails_loudly(self):
        trace = _fresh_trace()
        with pytest.raises(RegistryError, match="batch"):
            simulate(trace, GOOGLE_TABLET, engine="bacth")


class TestNumpyDependency:
    def test_missing_numpy_names_the_engine(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "numpy", None)
        with pytest.raises(ImportError) as excinfo:
            batch_mod._require_numpy()
        message = str(excinfo.value)
        assert "batch" in message
        assert "REPRO_SIM_ENGINE=inline" in message

    def test_inline_engine_importable_without_numpy(self):
        # The inline path must never touch repro.cpu.batch: listing the
        # registry and creating the inline engine import nothing heavy.
        factory = SIMULATORS.create("inline")
        trace = _fresh_trace(blocks=40)
        stats = factory(trace, GOOGLE_TABLET)
        assert stats.instructions == len(trace)
