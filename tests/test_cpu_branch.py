"""Tests for branch prediction structures."""

from repro.cpu import ReturnAddressStack, TwoLevelPredictor


class TestTwoLevelPredictor:
    def test_learns_constant_direction(self):
        bpu = TwoLevelPredictor()
        correct = [bpu.predict_conditional(0x100, True)
                   for _ in range(20)]
        assert all(correct[2:])

    def test_learns_loop_pattern(self):
        """Fixed-trip-count loops (TTTN repeating) become predictable."""
        bpu = TwoLevelPredictor()
        pattern = [True, True, True, False] * 40
        correct = [bpu.predict_conditional(0x200, t) for t in pattern]
        assert sum(correct[-40:]) >= 32  # >=80% on the trained tail

    def test_random_pattern_mispredicts(self):
        import random
        rng = random.Random(42)
        bpu = TwoLevelPredictor()
        outcomes = [rng.random() < 0.5 for _ in range(400)]
        correct = sum(bpu.predict_conditional(0x300, t) for t in outcomes)
        assert correct < 300  # can't learn noise

    def test_perfect_mode(self):
        bpu = TwoLevelPredictor(perfect=True)
        import random
        rng = random.Random(1)
        assert all(bpu.predict_conditional(0x400, rng.random() < 0.5)
                   for _ in range(100))
        assert bpu.stats.cond_mispredicts == 0

    def test_stats_counted(self):
        bpu = TwoLevelPredictor()
        for _ in range(10):
            bpu.predict_conditional(0x500, True)
        assert bpu.stats.conditional == 10
        assert 0.0 <= bpu.stats.cond_accuracy <= 1.0


class TestReturnAddressStack:
    def test_balanced_calls_predict(self):
        ras = ReturnAddressStack()
        for addr in (0x10, 0x20, 0x30):
            ras.push(addr)
        assert ras.predict_return()
        assert ras.predict_return()
        assert ras.predict_return()
        assert ras.stats.return_mispredicts == 0

    def test_underflow_mispredicts(self):
        ras = ReturnAddressStack()
        assert not ras.predict_return()
        assert ras.stats.return_mispredicts == 1

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(depth=2)
        for addr in (1, 2, 3):
            ras.push(addr)
        assert len(ras._stack) == 2

    def test_perfect_mode_never_mispredicts(self):
        ras = ReturnAddressStack(perfect=True)
        assert ras.predict_return()
        assert ras.stats.return_mispredicts == 0
