"""Unit tests for fanout criticality and the gap histogram (Fig 1b)."""

import pytest

from repro.dfg import (
    Dfg,
    NO_DEPENDENT,
    critical_fraction,
    critical_mask,
    gap_histogram,
    mean_fanout,
)
from repro.isa import Instruction, Opcode
from repro.trace import Trace, TraceEntry


def alu(dest, *srcs):
    return Instruction(Opcode.ADD, dests=(dest,), srcs=srcs)


def trace_of(instrs):
    return Trace([
        TraceEntry(seq=i, instr=ins.with_uid(i), pc=0x1000 + 4 * i)
        for i, ins in enumerate(instrs)
    ])


def chain_with_gap(gap):
    """Critical A -> gap low-fanout members -> critical B, with consumers."""
    instrs = [alu(0, 6, 7)]                        # A at 0
    consumers_a = [alu(3, 0) for _ in range(9)]    # give A fanout 9+1
    instrs += consumers_a
    prev = 0
    for g in range(gap):                           # gap members, fanout 1
        instrs.append(alu(1 + g % 2, prev))
        prev = 1 + g % 2
    instrs.append(alu(5, prev))                    # B
    instrs += [alu(3, 5) for _ in range(9)]        # B's fanout
    return Dfg(trace_of(instrs))


class TestCriticalMask:
    def test_threshold_boundary(self):
        assert critical_mask([7, 8, 9], threshold=8) == [False, True, True]

    def test_fraction(self):
        assert critical_fraction([0, 0, 8, 10], threshold=8) == 0.5
        assert critical_fraction([], threshold=8) == 0.0

    def test_mean_fanout(self):
        assert mean_fanout([1, 2, 3]) == 2.0
        assert mean_fanout([]) == 0.0


class TestGapHistogram:
    @pytest.mark.parametrize("gap", [0, 1, 2, 3, 5])
    def test_gap_measured_exactly(self, gap):
        dfg = chain_with_gap(gap)
        hist = gap_histogram(dfg, threshold=8)
        assert hist[str(gap)] > 0.0
        # A has the gap; B is terminal (no dependent critical).
        assert hist[NO_DEPENDENT] > 0.0

    def test_normalized(self):
        dfg = chain_with_gap(2)
        hist = gap_histogram(dfg, threshold=8)
        assert sum(hist.values()) == pytest.approx(1.0)

    def test_empty_when_no_criticals(self):
        dfg = Dfg(trace_of([alu(0, 1), alu(2, 0)]))
        hist = gap_histogram(dfg, threshold=8)
        assert all(v == 0.0 for v in hist.values())

    def test_gap_beyond_max_binned(self):
        dfg = chain_with_gap(7)
        hist = gap_histogram(dfg, threshold=8, max_gap=5)
        assert hist[">5"] > 0.0
