"""Wiring tests for the remaining figure modules (tiny scale)."""

import pytest

from repro.experiments import fig03, fig08, fig11, fig12, fig13

WALK = 120


class TestFig03:
    def test_runs_and_formats(self):
        groups = fig03.run(per_group=1, walk_blocks=WALK)
        assert {g.group for g in groups} == {
            "mobile", "spec_int", "spec_float"}
        text = fig03.format_result(groups)
        for header in ("Fig 3a", "Fig 3b", "Fig 3c"):
            assert header in text

    def test_stage_fractions_normalized(self):
        for group in fig03.run(per_group=1, walk_blocks=WALK):
            assert sum(group.stage_fractions.values()) \
                == pytest.approx(1.0, abs=1e-6)


class TestFig08:
    def test_lost_potential_definition(self):
        result = fig08.run(apps=2, walk_blocks=WALK)
        for row in result.rows:
            assert row.lost_potential_pct == pytest.approx(
                row.cdp_switch_pct - row.branch_switch_pct)
        assert "lost potential" in fig08.format_result(result)


class TestFig11:
    def test_all_mechanisms_present(self):
        result = fig11.run(apps=1, walk_blocks=WALK)
        assert [r.mechanism for r in result.rows] == [
            "2xFD", "4xI$", "EFetch", "PerfectBr", "BackendPrio", "AllHW"]
        text = fig11.format_result(result)
        assert "Fig 11a" in text and "Fig 11b" in text

    def test_stall_fractions_bounded(self):
        result = fig11.run(apps=1, walk_blocks=WALK)
        for row in result.rows:
            assert 0.0 <= row.stall_for_i <= 1.0
            assert 0.0 <= row.stall_for_rd <= 1.0


class TestFig12:
    def test_length_rows_cover_requested_lengths(self):
        rows = fig12.run_length_sensitivity(
            lengths=(2, 3), apps=1, walk_blocks=WALK)
        assert [r.length for r in rows] == [2, 3]
        assert "Fig 12a" in fig12.format_length(rows)

    def test_profile_rows(self):
        rows = fig12.run_profile_sensitivity(
            fractions=(0.5, 1.0), apps=1, walk_blocks=WALK)
        assert [r.profiled_fraction for r in rows] == [0.5, 1.0]
        assert "Fig 12b" in fig12.format_profile(rows)


class TestFig13:
    def test_schemes_and_conversions(self):
        result = fig13.run(apps=2, walk_blocks=WALK)
        assert len(result.mean_speedups_pct) == len(fig13.SCHEMES)
        for row in result.rows:
            for frac in row.converted_frac:
                assert 0.0 <= frac <= 1.0
        critic = list(fig13.SCHEMES).index("critic")
        opp16 = list(fig13.SCHEMES).index("opp16")
        # CritIC always converts less than OPP16.
        assert result.mean_converted_frac[critic] \
            < result.mean_converted_frac[opp16]
