"""Unit tests for dynamic dependence analysis."""

from repro.isa import Cond, Instruction, Opcode
from repro.trace import (
    Trace,
    TraceEntry,
    compute_consumers,
    compute_fanouts,
    compute_producers,
    reads_flags,
    writes_flags,
)


def make_trace(specs):
    """specs: list of (instr, mem_addr)."""
    entries = []
    for seq, spec in enumerate(specs):
        instr, mem = spec if isinstance(spec, tuple) else (spec, None)
        entries.append(TraceEntry(seq=seq, instr=instr, pc=0x1000 + 4 * seq,
                                  mem_addr=mem))
    return Trace(entries)


def alu(dest, *srcs, cond=Cond.AL):
    return Instruction(Opcode.ADD, dests=(dest,), srcs=srcs, cond=cond)


class TestRegisterDependences:
    def test_simple_raw(self):
        trace = make_trace([alu(0, 1), alu(2, 0)])
        producers = compute_producers(trace)
        assert producers[0] == ()
        assert producers[1] == (0,)

    def test_last_writer_wins(self):
        trace = make_trace([alu(0, 1), alu(0, 1), alu(2, 0)])
        producers = compute_producers(trace)
        assert producers[2] == (1,)

    def test_duplicate_sources_deduplicated(self):
        trace = make_trace([
            alu(0, 1),
            Instruction(Opcode.ADD, dests=(2,), srcs=(0, 0)),
        ])
        producers = compute_producers(trace)
        assert producers[1] == (0,)

    def test_two_distinct_producers(self):
        trace = make_trace([alu(0, 3), alu(1, 3), alu(2, 0, 1)])
        producers = compute_producers(trace)
        assert set(producers[2]) == {0, 1}


class TestFlagDependences:
    def test_flag_writers(self):
        assert writes_flags(Instruction(Opcode.CMP, srcs=(0, 1)))
        assert writes_flags(Instruction(Opcode.TST, srcs=(0, 1)))
        assert not writes_flags(alu(0, 1))

    def test_flag_readers(self):
        assert reads_flags(alu(0, 1, cond=Cond.EQ))
        assert reads_flags(Instruction(Opcode.B, cond=Cond.NE, target=1))
        assert not reads_flags(alu(0, 1))

    def test_branch_depends_on_cmp(self):
        trace = make_trace([
            Instruction(Opcode.CMP, srcs=(0, 1)),
            Instruction(Opcode.B, cond=Cond.EQ, target=0),
        ])
        producers = compute_producers(trace)
        assert producers[1] == (0,)

    def test_predicated_reads_latest_cmp(self):
        trace = make_trace([
            Instruction(Opcode.CMP, srcs=(0, 1)),
            Instruction(Opcode.CMP, srcs=(2, 3)),
            alu(4, 5, cond=Cond.NE),
        ])
        producers = compute_producers(trace)
        assert producers[2] == (1,)


class TestMemoryDependences:
    def test_store_to_load_same_word(self):
        store = Instruction(Opcode.STR, srcs=(0, 1))
        load = Instruction(Opcode.LDR, dests=(2,), srcs=(3,))
        trace = make_trace([(store, 0x8000), (load, 0x8000)])
        producers = compute_producers(trace)
        assert 0 in producers[1]

    def test_store_to_load_same_word_different_byte(self):
        store = Instruction(Opcode.STR, srcs=(0, 1))
        load = Instruction(Opcode.LDRB, dests=(2,), srcs=(3,))
        trace = make_trace([(store, 0x8000), (load, 0x8002)])
        producers = compute_producers(trace)
        assert 0 in producers[1]

    def test_different_words_independent(self):
        store = Instruction(Opcode.STR, srcs=(0, 1))
        load = Instruction(Opcode.LDR, dests=(2,), srcs=(3,))
        trace = make_trace([(store, 0x8000), (load, 0x8004)])
        producers = compute_producers(trace)
        assert 0 not in producers[1]


class TestConsumersAndFanout:
    def test_consumers_invert_producers(self):
        trace = make_trace([alu(0, 1), alu(2, 0), alu(3, 0)])
        producers = compute_producers(trace)
        consumers = compute_consumers(producers)
        assert consumers[0] == [1, 2]
        assert consumers[1] == []

    def test_fanout_counts(self):
        trace = make_trace(
            [alu(0, 1)] + [alu(2 + k % 3, 0) for k in range(5)]
        )
        fanouts = compute_fanouts(trace)
        assert fanouts[0] == 5
