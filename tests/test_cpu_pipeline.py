"""Tests for the cycle-level pipeline simulator."""

import pytest

from repro.cpu import (
    CpuConfig,
    GOOGLE_TABLET,
    SimStats,
    Simulator,
    config_2xfd,
    config_perfect_br,
    simulate,
    speedup,
)
from repro.isa import Cond, Encoding, Instruction, Opcode
from repro.trace import BasicBlock, Program, materialize
from repro.workloads import generate, get_profile


def alu(dest, *srcs, imm=None):
    return Instruction(Opcode.ADD, dests=(dest,), srcs=srcs, imm=imm)


def run_block(instrs, config=GOOGLE_TABLET, repeats=1):
    program = Program([BasicBlock(0, list(instrs))])
    trace = materialize(program, [0] * repeats)
    return simulate(trace, config, warm=True)


class TestBasics:
    def test_empty_independent_block(self):
        stats = run_block([alu(k % 8, 9) for k in range(64)])
        assert stats.instructions == 64
        assert stats.cycles > 64 // 4  # bounded by width
        assert 0 < stats.ipc <= 4.0

    def test_serial_chain_is_dataflow_bound(self):
        chain = [alu(0, 9)]
        chain += [alu((k + 1) % 6, k % 6) for k in range(40)]
        stats = run_block(chain)
        # A serial chain can retire at most ~1 per cycle.
        assert stats.ipc < 1.5

    def test_all_instructions_commit(self):
        wl = generate(get_profile("Music"), walk_blocks=60)
        stats = simulate(wl.trace())
        assert stats.instructions == len(wl.trace())

    def test_max_cycles_cuts_off(self):
        wl = generate(get_profile("Music"), walk_blocks=60)
        stats = simulate(wl.trace(), max_cycles=50)
        assert stats.cycles == 50
        assert stats.instructions < len(wl.trace())

    def test_deterministic(self):
        wl = generate(get_profile("Email"), walk_blocks=60)
        a = simulate(wl.trace())
        b = simulate(wl.trace())
        assert a.cycles == b.cycles
        assert a.icache_misses == b.icache_misses


class TestThumbFetch:
    def test_thumb_code_no_slower_and_halves_icache_traffic(self):
        """Same dependence-free program in 16-bit form: the backend caps
        both at 4 IPC, but the Thumb stream touches half the lines."""
        arm = [alu(k % 6, 8, imm=1) for k in range(256)]
        thumb = [i.with_encoding(Encoding.THUMB16) for i in arm]
        arm_stats = run_block(arm)
        thumb_stats = run_block(thumb)
        assert thumb_stats.cycles <= arm_stats.cycles
        assert thumb_stats.icache_accesses < arm_stats.icache_accesses

    def test_thumb_recovers_supply_under_narrow_fetch(self):
        """When fetch bytes are the bottleneck (8B/cycle = 2 ARM words),
        the 16-bit stream is strictly faster."""
        from dataclasses import replace
        narrow = replace(GOOGLE_TABLET, fetch_bytes_per_cycle=8)
        arm = [alu(k % 6, 8, imm=1) for k in range(256)]
        thumb = [i.with_encoding(Encoding.THUMB16) for i in arm]
        assert run_block(thumb, narrow).cycles \
            < run_block(arm, narrow).cycles

    def test_cdp_consumed_at_decode(self):
        instrs = [Instruction(Opcode.CDP, cdp_cover=3,
                              encoding=Encoding.THUMB16)]
        instrs += [alu(k, 8, imm=1).with_encoding(Encoding.THUMB16)
                   for k in range(3)]
        stats = run_block(instrs)
        assert stats.cdp_decoded == 1
        assert stats.instructions == 4  # CDP commits as a slot


class TestBranchHandling:
    def test_mispredicts_cost_cycles(self):
        """A hard-to-predict branch stream runs slower with a real BPU
        than with a perfect one."""
        wl = generate(get_profile("Angrybirds"), walk_blocks=200)
        real = simulate(wl.trace())
        oracle = simulate(wl.trace(), config_perfect_br())
        assert real.branch_mispredicts > 0
        assert oracle.cycles <= real.cycles
        assert oracle.branch_mispredicts == 0

    def test_switch_branch_bubble(self):
        """Approach-1 switch branches inject fetch bubbles."""
        body = [alu(k % 6, 8, imm=1) for k in range(8)]
        enter = Instruction(Opcode.B, imm=0)
        leave = Instruction(Opcode.B, imm=0, encoding=Encoding.THUMB16)
        thumb_body = [i.with_encoding(Encoding.THUMB16) for i in body]
        plain = run_block(body * 8)
        switched = run_block((
            [enter] + thumb_body + [leave]) * 8)
        assert switched.fetch.stall_switch > 0
        assert plain.fetch.stall_switch == 0


class TestHardwareVariants:
    def test_2xfd_not_slower(self):
        wl = generate(get_profile("Maps"), walk_blocks=150)
        base = simulate(wl.trace())
        wide = simulate(wl.trace(), config_2xfd())
        assert wide.cycles <= base.cycles * 1.01

    def test_scoped_stats_populated(self):
        wl = generate(get_profile("Maps"), walk_blocks=100)
        stats = simulate(wl.trace())
        assert stats.residency_all.instructions == stats.instructions
        assert 0 < stats.residency_critical.instructions \
            < stats.instructions

    def test_chain_positions_scoped(self):
        wl = generate(get_profile("Maps"), walk_blocks=100)
        stats = simulate(wl.trace(), chain_positions={0, 1, 2})
        assert stats.residency_chain.instructions == 3


class TestStatsInvariants:
    def test_cycle_accounting_covers_all_cycles(self):
        wl = generate(get_profile("Office"), walk_blocks=100)
        stats = simulate(wl.trace())
        f = stats.fetch
        total = (f.active + f.stall_icache + f.stall_branch
                 + f.stall_switch + f.stall_backpressure + f.drained)
        assert total == stats.cycles

    def test_speedup_helper(self):
        a = SimStats(cycles=100, instructions=100)
        b = SimStats(cycles=80, instructions=100)
        assert speedup(a, b) == pytest.approx(1.25)
        assert speedup(a, SimStats()) == 0.0

    def test_stage_residencies_non_negative(self):
        wl = generate(get_profile("Office"), walk_blocks=80)
        stats = simulate(wl.trace())
        for value in stats.residency_all.totals.values():
            assert value >= 0
