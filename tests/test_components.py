"""Unit tests for the two new registered components: the TRRIP i-cache
replacement policy and the criticality-weighted next-line prefetcher."""

from repro.cpu import GOOGLE_TABLET, simulate
from repro.memory.prefetch import CriticalNextLinePrefetcher
from repro.memory.replacement import LruPolicy, TrripPolicy, make_policy
from repro.workloads import generate, get_profile


class TestTrripPolicy:
    def setup_method(self):
        self.policy = TrripPolicy()

    def test_demand_miss_inserts_warm(self):
        ways = self.policy.new_set()
        hit, evicted = self.policy.access(ways, 10, assoc=4)
        assert (hit, evicted) == (False, False)
        assert ways == [[10, TrripPolicy.DEMAND_RRPV]]

    def test_hit_promotes_to_hot(self):
        ways = self.policy.new_set()
        self.policy.access(ways, 10, assoc=4)
        hit, evicted = self.policy.access(ways, 10, assoc=4)
        assert (hit, evicted) == (True, False)
        assert ways == [[10, TrripPolicy.HIT_RRPV]]

    def test_prefetch_fill_inserts_cold(self):
        ways = self.policy.new_set()
        self.policy.fill(ways, 10, assoc=4)
        assert ways == [[10, TrripPolicy.PREFETCH_RRPV]]
        assert self.policy.probe(ways, 10)
        assert not self.policy.probe(ways, 11)

    def test_fill_never_cools_resident_line(self):
        ways = self.policy.new_set()
        self.policy.access(ways, 10, assoc=4)
        self.policy.access(ways, 10, assoc=4)  # now hot
        self.policy.fill(ways, 10, assoc=4)
        assert ways == [[10, TrripPolicy.HIT_RRPV]]

    def test_eviction_takes_coldest_way(self):
        ways = self.policy.new_set()
        self.policy.access(ways, 1, assoc=2)   # warm
        self.policy.fill(ways, 2, assoc=2)     # cold (prefetch)
        self.policy.access(ways, 3, assoc=2)   # evicts the cold way 2
        tags = [entry[0] for entry in ways]
        assert tags == [1, 3]

    def test_eviction_ages_until_max(self):
        ways = self.policy.new_set()
        self.policy.access(ways, 1, assoc=2)
        self.policy.access(ways, 1, assoc=2)   # hot (rrpv 0)
        self.policy.access(ways, 2, assoc=2)   # warm (rrpv 2)
        self.policy.access(ways, 3, assoc=2)   # ages both, evicts tag 2
        tags = [entry[0] for entry in ways]
        assert tags == [1, 3]
        # the survivor aged from hot toward eviction
        assert ways[0][1] == TrripPolicy.HIT_RRPV + 1

    def test_hot_line_survives_cold_streaming(self):
        """The TRRIP rationale: a re-referenced line outlives a stream of
        prefetch fills that would thrash it under LRU."""
        assoc = 4
        trrip = self.policy.new_set()
        self.policy.access(trrip, 100, assoc)
        self.policy.access(trrip, 100, assoc)  # proven hot
        lru = LruPolicy()
        lru_ways = lru.new_set()
        lru.access(lru_ways, 100, assoc)
        lru.access(lru_ways, 100, assoc)
        for tag in range(8):  # cold streaming fills
            self.policy.fill(trrip, tag, assoc)
            lru.fill(lru_ways, tag, assoc)
        assert self.policy.probe(trrip, 100)     # TRRIP keeps the hot line
        assert not lru.probe(lru_ways, 100)      # LRU thrashed it

    def test_make_policy(self):
        assert isinstance(make_policy("trrip"), TrripPolicy)
        assert isinstance(make_policy("lru"), LruPolicy)


class TestCriticalNextLinePrefetcher:
    def test_critical_fetch_prefetches_deep(self):
        pf = CriticalNextLinePrefetcher(critical_degree=4)
        assert pf.observe_fetch(10, critical=True) == [11, 12, 13, 14]
        assert pf.issued == 4

    def test_non_critical_fetch_is_free_by_default(self):
        pf = CriticalNextLinePrefetcher()
        assert pf.observe_fetch(10, critical=False) == []
        assert pf.issued == 0

    def test_base_degree_covers_non_critical(self):
        pf = CriticalNextLinePrefetcher(critical_degree=4, base_degree=1)
        assert pf.observe_fetch(10, critical=False) == [11]
        assert pf.observe_fetch(20, critical=True) == [21, 22, 23, 24]
        assert pf.issued == 5

    def test_end_to_end_counter_lands_in_component_counters(self):
        workload = generate(get_profile("Music"), walk_blocks=80)
        config = GOOGLE_TABLET.with_components(
            prefetchers=("critical-nextline",))
        stats = simulate(workload.trace(), config)
        issued = stats.component_counters.get(
            "prefetch.critical-nextline", 0)
        assert issued > 0
        assert stats.prefetches_issued == issued
        assert stats.clpt_prefetches_issued == 0
        assert stats.efetch_prefetches_issued == 0

    def test_end_to_end_never_adds_demand_misses(self):
        workload = generate(get_profile("Music"), walk_blocks=80)
        plain = simulate(workload.trace(), GOOGLE_TABLET)
        with_pf = simulate(workload.trace(), GOOGLE_TABLET.with_components(
            prefetchers=("critical-nextline",)))
        assert with_pf.icache_misses <= plain.icache_misses
        assert with_pf.icache_accesses == plain.icache_accesses


class TestTrripEndToEnd:
    def test_trrip_config_simulates_and_diverges_from_lru(self):
        workload = generate(get_profile("Music"), walk_blocks=80)
        lru = simulate(workload.trace(), GOOGLE_TABLET)
        trrip = simulate(workload.trace(), GOOGLE_TABLET.with_components(
            icache_policy="trrip"))
        # Same fetch stream, same demand accesses; only victims differ.
        assert trrip.icache_accesses == lru.icache_accesses
        assert trrip.instructions == lru.instructions
