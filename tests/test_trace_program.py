"""Unit tests for repro.trace.program."""

import pytest

from repro.isa import Encoding, Instruction, Opcode
from repro.trace import BasicBlock, Program, TEXT_BASE


def alu(uid=-1, dest=0):
    return Instruction(Opcode.ADD, dests=(dest,), srcs=(1,), uid=uid)


def make_program():
    return Program([
        BasicBlock(0, [alu(dest=0), alu(dest=1)]),
        BasicBlock(1, [alu(dest=2)]),
    ], name="p")


class TestConstruction:
    def test_uids_assigned(self):
        program = make_program()
        uids = [i.uid for i in program]
        assert sorted(uids) == list(range(3))

    def test_existing_uids_preserved(self):
        program = Program([BasicBlock(0, [alu(uid=7), alu()])])
        uids = {i.uid for i in program}
        assert 7 in uids
        assert len(uids) == 2

    def test_duplicate_uid_rejected(self):
        with pytest.raises(ValueError):
            Program([BasicBlock(0, [alu(uid=3), alu(uid=3)])])

    def test_duplicate_block_id_rejected(self):
        with pytest.raises(ValueError):
            Program([BasicBlock(0, []), BasicBlock(0, [])])

    def test_counts(self):
        program = make_program()
        assert program.instruction_count() == 3
        assert len(program.block(0)) == 2


class TestLookups:
    def test_find_and_locate(self):
        program = make_program()
        for instr in program:
            assert program.find(instr.uid) == instr
            block_id, pos = program.locate(instr.uid)
            assert program.block(block_id).instructions[pos] == instr

    def test_fresh_uid_unused(self):
        program = make_program()
        fresh = program.fresh_uid()
        assert all(i.uid != fresh for i in program)


class TestMutation:
    def test_replace_block_reindexes(self):
        program = make_program()
        program.replace_block(1, [alu(dest=5)])
        assert len(program.block(1)) == 1
        new_uid = program.block(1).instructions[0].uid
        assert program.locate(new_uid) == (1, 0)

    def test_copy_is_independent(self):
        program = make_program()
        clone = program.copy()
        clone.block(0).instructions.append(alu(dest=3))
        clone.reindex()
        assert program.instruction_count() == 3
        assert clone.instruction_count() == 4


class TestLayout:
    def test_sequential_addresses(self):
        program = make_program()
        layout = program.layout()
        addrs = [layout[i.uid] for i in program]
        assert addrs[0] == TEXT_BASE
        assert addrs == sorted(addrs)
        assert addrs[1] - addrs[0] == 4

    def test_blocks_word_aligned(self):
        program = Program([
            BasicBlock(0, [alu().with_encoding(Encoding.THUMB16)]),
            BasicBlock(1, [alu()]),
        ])
        layout = program.layout()
        block1_start = layout[program.block(1).instructions[0].uid]
        assert block1_start % 4 == 0

    def test_thumb_halves_size(self):
        arm = Program([BasicBlock(0, [alu(dest=d) for d in range(4)])])
        thumb_block = BasicBlock(
            0, [alu(dest=d).with_encoding(Encoding.THUMB16)
                for d in range(4)]
        )
        thumb = Program([thumb_block])
        assert thumb.code_bytes() == arm.code_bytes() // 2

    def test_custom_base(self):
        program = make_program()
        layout = program.layout(base=0x4000)
        assert min(layout.values()) == 0x4000
