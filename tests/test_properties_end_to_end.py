"""Cross-cutting property tests: semantic preservation of every compiler
scheme over generated workloads."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import (
    CompressPass,
    CriticPass,
    Opp16Pass,
    PassManager,
    region_oracle,
)
from repro.isa import Opcode
from repro.profiler import find_critic_profile
from repro.trace import compute_producers
from repro.workloads import generate, get_profile, mobile_app_names


def dependence_map(trace):
    """uid-level dataflow: executed work instructions and their producer
    uid multisets, ignoring CDP markers and switch branches."""
    producers = compute_producers(trace)
    work = []
    for pos, entry in enumerate(trace.entries):
        instr = entry.instr
        if instr.opcode is Opcode.CDP:
            continue
        if instr.opcode is Opcode.B and instr.target is None:
            continue  # Approach-1 switch branch
        prod_uids = tuple(sorted(
            trace.entries[p].uid for p in producers[pos]
            if trace.entries[p].instr.opcode is not Opcode.CDP
        ))
        work.append((entry.uid, prod_uids, entry.mem_addr))
    return work


@pytest.mark.parametrize("scheme_passes", [
    ("opp16", lambda wl, recs, oracle: [Opp16Pass()]),
    ("compress", lambda wl, recs, oracle: [CompressPass()]),
    ("critic", lambda wl, recs, oracle: [
        CriticPass(recs, mode="cdp", may_alias=oracle)]),
    ("hoist", lambda wl, recs, oracle: [
        CriticPass(recs, mode="hoist", may_alias=oracle)]),
    ("branch", lambda wl, recs, oracle: [
        CriticPass(recs, mode="branch", may_alias=oracle)]),
], ids=lambda sp: sp[0])
@pytest.mark.parametrize("app", ["Acrobat", "Music", "Youtube"])
def test_transform_preserves_dataflow(app, scheme_passes):
    """THE key compiler property: for every scheme, the transformed
    dynamic stream executes exactly the same work instructions with
    exactly the same producer sets and memory addresses."""
    _name, make_passes = scheme_passes
    wl = generate(get_profile(app), walk_blocks=100)
    trace = wl.trace()
    profile = find_critic_profile(trace, wl.program, app_name=app)
    records = profile.select_for_compiler(max_length=5)
    oracle = region_oracle(wl.memory)
    result = PassManager(make_passes(wl, records, oracle)).run(wl.program)
    transformed = wl.trace_for(result.program)

    base_map = dependence_map(trace)
    new_map = dependence_map(transformed)
    assert len(base_map) == len(new_map)
    # Same multiset of (uid, producers, address) triples: dataflow intact.
    assert sorted(base_map) == sorted(new_map)


@given(seed=st.integers(min_value=0, max_value=30))
@settings(max_examples=8, deadline=None)
def test_property_generated_workloads_well_formed(seed):
    """Any seed yields a structurally valid workload."""
    profile = get_profile("Facebook").with_seed(seed)
    wl = generate(profile, walk_blocks=60)
    trace = wl.trace()
    assert len(trace) > 0
    layout = wl.program.layout()
    for entry in trace:
        assert layout[entry.uid] == entry.pc
        if entry.instr.is_memory:
            assert entry.mem_addr is not None
            assert entry.mem_addr % 4 == 0


@given(seed=st.integers(min_value=0, max_value=30))
@settings(max_examples=6, deadline=None)
def test_property_chains_detected_for_any_seed(seed):
    """The generator's contract with the profiler holds for any seed:
    chains are discoverable and hoistable."""
    wl = generate(get_profile("Office").with_seed(seed), walk_blocks=120)
    profile = find_critic_profile(wl.trace(), wl.program)
    if len(profile) == 0:
        return  # tiny walks can miss chain blocks; nothing to check
    hoistable = [r for r in profile if r.hoistable]
    assert len(hoistable) >= len(profile) // 2
