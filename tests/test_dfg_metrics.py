"""Unit + property tests for chain-criticality metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.dfg import (
    METRICS,
    average_fanout,
    geometric_mean_fanout,
    get_metric,
    total_fanout,
    variance_penalized_fanout,
)


class TestMetrics:
    def test_average(self):
        assert average_fanout([10, 2, 6]) == 6.0
        assert average_fanout([]) == 0.0

    def test_total(self):
        assert total_fanout([10, 2, 6]) == 18.0

    def test_variance_penalty_uniform_chain(self):
        assert variance_penalized_fanout([5, 5, 5]) == pytest.approx(5.0)

    def test_variance_penalty_spiky_chain(self):
        uniform = variance_penalized_fanout([6, 6, 6])
        spiky = variance_penalized_fanout([18, 0, 0])
        assert spiky < uniform

    def test_geometric_mean_bounds(self):
        assert geometric_mean_fanout([3, 3, 3]) == pytest.approx(3.0)
        assert geometric_mean_fanout([]) == 0.0

    def test_registry_lookup(self):
        assert get_metric("average") is average_fanout
        with pytest.raises(KeyError, match="unknown metric"):
            get_metric("nonsense")

    def test_registry_complete(self):
        assert set(METRICS) == {
            "average", "total", "variance_penalized", "geometric"}


@given(st.lists(st.integers(min_value=0, max_value=60),
                min_size=1, max_size=20))
def test_property_metric_relations(fanouts):
    """Invariants: total >= average; variance-penalized <= average;
    geometric <= average (AM-GM on 1+f)."""
    avg = average_fanout(fanouts)
    assert total_fanout(fanouts) >= avg - 1e-9
    assert variance_penalized_fanout(fanouts) <= avg + 1e-9
    assert geometric_mean_fanout(fanouts) <= avg + 1e-9


@given(st.lists(st.integers(min_value=0, max_value=60),
                min_size=1, max_size=20),
       st.integers(min_value=1, max_value=5))
def test_property_scale_monotone(fanouts, k):
    """Raising every member's fanout raises every metric."""
    bigger = [f + k for f in fanouts]
    for name, metric in METRICS.items():
        assert metric(bigger) >= metric(fanouts) - 1e-9, name
