"""Tests for the workload pattern library (repro.workloads.patterns).

Covers the eighth registry itself, per-family determinism and structure,
the trace-replay round trip (direct, via the artifact cache, and under
both simulation engines including the batch fallback path), and the
per-program trace memoization fix in ``Workload``.
"""

import dataclasses

import pytest

from repro.cache import artifact_key, get_cache, reset_cache
from repro.cpu import GOOGLE_TABLET, simulate
from repro.cpu.batch import last_batch_report, simulate_batch
from repro.cpu.config import config_critical_prefetch
from repro.experiments.runner import app_context, clear_cache
from repro.registry import WORKLOAD_FAMILIES, RegistryError
from repro.workloads import (
    build_workload,
    generate,
    get_profile,
    record_replay_source,
    replay_source_key,
    replay_workload,
)

WALK = 120

NEW_FAMILIES = ("phased", "bursty", "zipfian-footprint", "netbound",
                "vecmobile")


@pytest.fixture(autouse=True)
def _fresh_state(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    reset_cache()
    clear_cache()
    yield
    clear_cache()
    reset_cache()


def small_profile(name="Email", walk_blocks=WALK):
    base = get_profile(name)
    return base.scaled(walk_blocks / base.walk_blocks)


class TestRegistry:
    def test_all_families_registered(self):
        names = WORKLOAD_FAMILIES.names()
        assert "default" in names
        assert "trace-replay" in names
        for family in NEW_FAMILIES:
            assert family in names
        assert len(names) >= 7

    def test_identities_are_versioned(self):
        for name in WORKLOAD_FAMILIES.names():
            assert WORKLOAD_FAMILIES.identity(name) == f"{name}@1"

    def test_did_you_mean_suggests_for_head_token_typo(self):
        with pytest.raises(RegistryError, match="zipfian-footprint"):
            WORKLOAD_FAMILIES.entry("zipfain")
        with pytest.raises(RegistryError, match="did you mean"):
            build_workload("zipfain", small_profile())

    def test_build_workload_unknown_family_raises(self):
        with pytest.raises((KeyError, ValueError)):
            build_workload("no-such-family", small_profile())


class TestFamilies:
    def test_default_family_matches_generate_bitwise(self):
        prof = small_profile()
        direct = generate(prof)
        via_registry = build_workload("default", prof)
        assert via_registry.walk == direct.walk
        assert [i.signature() for i in via_registry.program] \
            == [i.signature() for i in direct.program]
        assert list(via_registry.trace()) == list(direct.trace())

    @pytest.mark.parametrize("family", NEW_FAMILIES)
    def test_family_is_deterministic(self, family):
        prof = small_profile()
        a = build_workload(family, prof)
        b = build_workload(family, prof)
        assert a.walk == b.walk
        assert [i.signature() for i in a.program] \
            == [i.signature() for i in b.program]
        assert list(a.trace()) == list(b.trace())
        assert simulate(a.trace(), GOOGLE_TABLET) \
            == simulate(b.trace(), GOOGLE_TABLET)

    @pytest.mark.parametrize("family", NEW_FAMILIES)
    def test_family_differs_from_default(self, family):
        prof = small_profile()
        default = simulate(build_workload("default", prof).trace(),
                           GOOGLE_TABLET)
        shaped = simulate(build_workload(family, prof).trace(),
                          GOOGLE_TABLET)
        assert (shaped.instructions, shaped.cycles) \
            != (default.instructions, default.cycles)

    @pytest.mark.parametrize("family", NEW_FAMILIES)
    def test_family_walk_and_structure_valid(self, family):
        wl = build_workload(family, small_profile())
        block_ids = {b.block_id for b in wl.program.blocks}
        assert set(wl.walk) <= block_ids
        assert len(wl.trace()) > 500
        for entry in wl.trace():
            assert (entry.mem_addr is not None) == entry.instr.is_memory
            if entry.instr.is_branch:
                assert entry.taken is not None

    @pytest.mark.parametrize("family", NEW_FAMILIES)
    def test_family_compiles_under_critic_scheme(self, family):
        ctx = app_context("Email", WALK, family)
        stats = ctx.stats("critic", GOOGLE_TABLET)
        assert stats.cycles > 0

    def test_seed_changes_family_output(self):
        prof = small_profile()
        reseeded = dataclasses.replace(prof, seed=prof.seed + 17)
        a = build_workload("bursty", prof).trace()
        b = build_workload("bursty", reseeded).trace()
        assert list(a) != list(b)


class TestTraceReplay:
    def test_round_trip_preserves_trace_and_stats(self):
        prof = small_profile("Facebook", 150)
        trace = generate(prof).trace()
        replayed = replay_workload(prof, trace)
        assert list(replayed.trace()) == list(trace)
        assert simulate(replayed.trace(), GOOGLE_TABLET) \
            == simulate(trace, GOOGLE_TABLET)

    def test_rematerialized_replay_matches_recording(self):
        """The reconstructed program + walk + memory reproduce the
        recording's uid/taken/address streams from scratch (pcs differ:
        the replay program has its own layout)."""
        prof = small_profile("Facebook", 150)
        trace = generate(prof).trace()
        replayed = replay_workload(prof, trace)
        replayed._trace_memo.clear()
        again = replayed.trace()
        assert [(e.uid, e.taken, e.mem_addr) for e in again] \
            == [(e.uid, e.taken, e.mem_addr) for e in trace]

    def test_family_builds_from_cached_artifact(self):
        prof = small_profile()
        trace = generate(prof).trace()
        record_replay_source(prof, trace)
        assert get_cache().load_trace(replay_source_key(prof)) is not None
        replayed = build_workload("trace-replay", prof)
        assert list(replayed.trace()) == list(trace)

    def test_family_self_primes_cold_cache(self):
        prof = small_profile()
        replayed = build_workload("trace-replay", prof)
        assert list(replayed.trace()) == list(generate(prof).trace())
        # ... and leaves the recording behind for the next build.
        assert get_cache().load_trace(replay_source_key(prof)) is not None

    def test_replay_source_key_is_runner_baseline_key(self):
        """The replay source key equals the runner's default-family
        baseline trace key, so any previously swept app is replayable."""
        ctx = app_context("Email", WALK)
        ctx.trace()
        prof = ctx.app_profile
        assert get_cache().load_trace(replay_source_key(prof)) is not None

    def test_replay_of_shaped_family_round_trips(self):
        prof = small_profile()
        source = build_workload("netbound", prof).trace()
        replayed = replay_workload(prof, source)
        assert list(replayed.trace()) == list(source)

    def test_replay_identical_under_both_engines(self):
        """Inline vs batch over the replayed trace, including the
        deterministic batch fallback for a non-vectorizable CLPT cell
        (reason: load-observing prefetcher)."""
        prof = small_profile()
        trace = generate(prof).trace()
        replayed = build_workload("trace-replay", prof)
        clpt = config_critical_prefetch()
        batch = simulate_batch(replayed.trace(), [GOOGLE_TABLET, clpt])
        report = last_batch_report()
        assert report is not None
        assert ("CritLoadPrefetch", "load-observing prefetcher") \
            in report["fallbacks"]
        assert batch[0] == simulate(trace, GOOGLE_TABLET)
        assert batch[1] == simulate(trace, clpt)

    def test_replay_compiles_under_critic_scheme(self):
        ctx = app_context("Email", WALK, "trace-replay")
        stats = ctx.stats("critic", GOOGLE_TABLET)
        assert stats.cycles > 0


class TestRunnerIntegration:
    def test_app_context_memo_is_per_family(self):
        default = app_context("Email", WALK)
        bursty = app_context("Email", WALK, "bursty")
        assert default is not bursty
        assert app_context("Email", WALK, "bursty") is bursty
        assert default.workload_family == "default"
        assert bursty.workload_family == "bursty"

    def test_default_family_cache_keys_unchanged(self):
        """The default family adds nothing to artifact keys — warm
        caches and the golden gate stay byte-identical."""
        ctx = app_context("Email", WALK)
        assert ctx._family_key_params() == {}
        legacy = artifact_key("trace", profile=ctx.app_profile,
                              scheme="baseline")
        assert legacy == artifact_key(
            "trace", profile=ctx.app_profile, scheme="baseline",
            **ctx._family_key_params())

    def test_non_default_family_changes_stats_keys(self):
        default = app_context("Email", WALK)
        shaped = app_context("Email", WALK, "phased")
        assert shaped._family_key_params() \
            == {"workload_family": "phased@1"}
        assert default._stats_key("baseline", GOOGLE_TABLET, 5, 1.0) \
            != shaped._stats_key("baseline", GOOGLE_TABLET, 5, 1.0)

    def test_families_share_a_cache_without_colliding(self):
        """Regression: the critic-profile artifact key must carry the
        family, or the second family compiles against the first one's
        hot-block ids (KeyError deep in the critic pass)."""
        first = app_context("Email", WALK, "bursty") \
            .stats("critic", GOOGLE_TABLET)
        clear_cache()  # fresh contexts, same (warm) artifact cache
        second = app_context("Email", WALK, "netbound") \
            .stats("critic", GOOGLE_TABLET)
        assert first != second
        clear_cache()
        assert app_context("Email", WALK, "bursty") \
            .stats("critic", GOOGLE_TABLET) == first

    def test_stats_bit_identical_across_runs(self):
        first = app_context("Email", WALK, "zipfian-footprint") \
            .stats("baseline", GOOGLE_TABLET)
        clear_cache()
        reset_cache()
        second = app_context("Email", WALK, "zipfian-footprint") \
            .stats("baseline", GOOGLE_TABLET)
        assert first == second


class TestTraceMemoRegression:
    def test_trace_for_mutated_copy_is_not_stale(self):
        """Regression: ``trace_for`` on a mutated program copy must
        re-materialize, never serve the original's cached trace."""
        wl = generate(small_profile())
        original = wl.trace()
        clone = wl.program.copy()
        # Mutate the clone: drop a leading non-branch instruction from a
        # block the walk actually visits, so the stream must change.
        for block_id in wl.walk:
            block = clone.block(block_id)
            if len(block.instructions) > 2 \
                    and not block.instructions[0].is_branch:
                block.instructions.pop(0)
                break
        mutated = wl.trace_for(clone)
        assert [e.uid for e in mutated] != [e.uid for e in original]
        # The original program's memo entry is untouched.
        assert list(wl.trace()) == list(original)

    def test_trace_for_memoizes_per_program(self):
        wl = generate(small_profile())
        clone = wl.program.copy()
        first = wl.trace_for(clone)
        assert wl.trace_for(clone) is first
        assert wl.trace_for(wl.program) is wl.trace()

    def test_adopt_trace_only_fills_empty_memo(self):
        wl = generate(small_profile())
        foreign = generate(small_profile("Facebook"))
        own = wl.trace()
        wl.adopt_trace(foreign.trace())
        assert wl.trace() is own
