"""Unit + property tests for trace sampling."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import Instruction, Opcode
from repro.trace import Trace, TraceEntry, plan_samples, sample_trace


def make_trace(n):
    instr = Instruction(Opcode.NOP)
    return Trace([TraceEntry(seq=i, instr=instr, pc=4 * i)
                  for i in range(n)])


class TestPlanning:
    def test_basic_plan(self):
        plan = plan_samples(10_000, num_samples=5, window_length=100, seed=1)
        assert len(plan.windows) == 5
        for start, length in plan.windows:
            assert length == 100
            assert 0 <= start <= 9_900

    def test_short_trace_single_window(self):
        plan = plan_samples(50, num_samples=10, window_length=100)
        assert plan.windows == ((0, 50),)

    def test_deterministic_by_seed(self):
        a = plan_samples(10_000, 5, 100, seed=7)
        b = plan_samples(10_000, 5, 100, seed=7)
        c = plan_samples(10_000, 5, 100, seed=8)
        assert a.windows == b.windows
        assert a.windows != c.windows

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            plan_samples(0, 1, 10)
        with pytest.raises(ValueError):
            plan_samples(100, 0, 10)
        with pytest.raises(ValueError):
            plan_samples(100, 1, 0)


class TestApplication:
    def test_windows_cut_correctly(self):
        trace = make_trace(1000)
        samples = sample_trace(trace, 3, 50, seed=2)
        assert len(samples) == 3
        for sample in samples:
            assert len(sample) == 50
            seqs = [e.seq for e in sample]
            assert seqs == list(range(seqs[0], seqs[0] + 50))


@given(
    trace_len=st.integers(min_value=1, max_value=5000),
    num=st.integers(min_value=1, max_value=20),
    window=st.integers(min_value=1, max_value=600),
    seed=st.integers(min_value=0, max_value=99),
)
def test_property_windows_always_in_bounds(trace_len, num, window, seed):
    plan = plan_samples(trace_len, num, window, seed)
    for start, length in plan.windows:
        assert start >= 0
        assert start + length <= trace_len
