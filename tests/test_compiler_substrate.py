"""Tests for the ART-style substrate passes."""

import pytest

from repro.compiler import (
    ConstantFoldingPass,
    DeadCodePass,
    PassManager,
    SimplifierPass,
)
from repro.isa import Cond, Instruction, Opcode
from repro.trace import BasicBlock, Program


def prog(instrs):
    return Program([BasicBlock(0, list(instrs))])


class TestConstantFolding:
    def test_folds_mov_add(self):
        result = PassManager([ConstantFoldingPass()]).run(prog([
            Instruction(Opcode.MOV, dests=(0,), imm=5),
            Instruction(Opcode.ADD, dests=(1,), srcs=(0,), imm=3),
        ]))
        folded = result.program.block(0).instructions[1]
        assert folded.opcode is Opcode.MOV
        assert folded.imm == 8
        assert result.ctx.get("constant-folding", "folded") == 1

    def test_folds_shift(self):
        result = PassManager([ConstantFoldingPass()]).run(prog([
            Instruction(Opcode.MOV, dests=(0,), imm=3),
            Instruction(Opcode.LSL, dests=(1,), srcs=(0,), imm=2),
        ]))
        assert result.program.block(0).instructions[1].imm == 12

    def test_does_not_fold_same_register(self):
        result = PassManager([ConstantFoldingPass()]).run(prog([
            Instruction(Opcode.MOV, dests=(0,), imm=5),
            Instruction(Opcode.ADD, dests=(0,), srcs=(0,), imm=3),
        ]))
        assert result.program.block(0).instructions[1].opcode is Opcode.ADD

    def test_does_not_fold_predicated(self):
        result = PassManager([ConstantFoldingPass()]).run(prog([
            Instruction(Opcode.MOV, dests=(0,), imm=5),
            Instruction(Opcode.ADD, dests=(1,), srcs=(0,), imm=3,
                        cond=Cond.EQ),
        ]))
        assert result.program.block(0).instructions[1].opcode is Opcode.ADD

    def test_input_not_mutated(self):
        program = prog([
            Instruction(Opcode.MOV, dests=(0,), imm=5),
            Instruction(Opcode.ADD, dests=(1,), srcs=(0,), imm=3),
        ])
        before = list(program)
        PassManager([ConstantFoldingPass()]).run(program)
        assert list(program) == before


class TestSimplifier:
    def test_add_zero_becomes_mov(self):
        result = PassManager([SimplifierPass()]).run(prog([
            Instruction(Opcode.ADD, dests=(1,), srcs=(0,), imm=0),
        ]))
        out = result.program.block(0).instructions[0]
        assert out.opcode is Opcode.MOV
        assert out.srcs == (0,)
        assert out.imm is None

    def test_nonzero_untouched(self):
        result = PassManager([SimplifierPass()]).run(prog([
            Instruction(Opcode.ADD, dests=(1,), srcs=(0,), imm=4),
        ]))
        assert result.program.block(0).instructions[0].opcode is Opcode.ADD

    def test_and_zero_not_identity(self):
        # AND Rd, Rs, #0 is NOT a move; the simplifier must leave it.
        result = PassManager([SimplifierPass()]).run(prog([
            Instruction(Opcode.AND, dests=(1,), srcs=(0,), imm=0),
        ]))
        assert result.program.block(0).instructions[0].opcode is Opcode.AND


class TestDeadCode:
    def test_removes_overwritten_value(self):
        result = PassManager([DeadCodePass()]).run(prog([
            Instruction(Opcode.MOV, dests=(0,), imm=1),   # dead
            Instruction(Opcode.MOV, dests=(0,), imm=2),
            Instruction(Opcode.ADD, dests=(1,), srcs=(0,)),
        ]))
        assert len(result.program.block(0)) == 2
        assert result.ctx.get("dead-code", "removed") == 1

    def test_keeps_read_value(self):
        result = PassManager([DeadCodePass()]).run(prog([
            Instruction(Opcode.MOV, dests=(0,), imm=1),
            Instruction(Opcode.ADD, dests=(1,), srcs=(0,)),
            Instruction(Opcode.MOV, dests=(0,), imm=2),
        ]))
        assert len(result.program.block(0)) == 3

    def test_keeps_possibly_live_out(self):
        result = PassManager([DeadCodePass()]).run(prog([
            Instruction(Opcode.MOV, dests=(0,), imm=1),
        ]))
        assert len(result.program.block(0)) == 1

    def test_never_removes_stores_or_branches(self):
        result = PassManager([DeadCodePass()]).run(prog([
            Instruction(Opcode.STR, srcs=(0, 1)),
            Instruction(Opcode.CMP, srcs=(0, 1)),
            Instruction(Opcode.B, cond=Cond.EQ, target=0),
        ]))
        assert len(result.program.block(0)) == 3

    def test_predicated_write_not_a_kill(self):
        result = PassManager([DeadCodePass()]).run(prog([
            Instruction(Opcode.MOV, dests=(0,), imm=1),
            Instruction(Opcode.MOV, dests=(0,), imm=2, cond=Cond.EQ),
            Instruction(Opcode.ADD, dests=(1,), srcs=(0,)),
        ]))
        # The conditional MOV may not execute: the first MOV stays live.
        assert len(result.program.block(0)) == 3


class TestPipelineComposition:
    def test_fold_then_dce(self):
        result = PassManager([
            ConstantFoldingPass(), DeadCodePass(),
        ]).run(prog([
            Instruction(Opcode.MOV, dests=(0,), imm=5),
            Instruction(Opcode.ADD, dests=(1,), srcs=(0,), imm=3),
            Instruction(Opcode.MOV, dests=(0,), imm=9),
            Instruction(Opcode.SUB, dests=(2,), srcs=(1,)),
            Instruction(Opcode.SUB, dests=(3,), srcs=(0,)),
        ]))
        # Folding turns the ADD into MOV R1,#8 -> the first MOV is dead.
        assert len(result.program.block(0)) == 4
        assert result.ctx.get("constant-folding", "folded") == 1
        assert result.ctx.get("dead-code", "removed") == 1
