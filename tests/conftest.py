"""Unit tests run against a private, empty artifact cache.

The persistent cache (``~/.cache/repro``) is a feature for the benchmark
workflow; unit tests must not read artifacts produced by other versions
of the code (or leak artifacts into the user's cache), so each test
session gets a throwaway cache root.
"""

import os
import tempfile

os.environ["REPRO_CACHE_DIR"] = tempfile.mkdtemp(prefix="repro-test-cache-")
