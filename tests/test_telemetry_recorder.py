"""Tests for the pipeline flight recorder.

The golden file under ``tests/data/`` pins the exact JSONL a tiny
20-instruction trace produces; regenerate it after *intentional* timing
changes with::

    PYTHONPATH=src python tests/test_telemetry_recorder.py
"""

import json
from pathlib import Path

import pytest

from repro.cpu import GOOGLE_TABLET, simulate
from repro.isa import Instruction, Opcode
from repro.telemetry import FlightRecorder, STALL_CAUSES, parse_jsonl
from repro.telemetry.recorder import _rle
from repro.telemetry.view import render
from repro.telemetry import view as tview
from repro.trace import BasicBlock, Program, materialize
from repro.workloads import generate, get_profile

GOLDEN = Path(__file__).parent / "data" / "flight_recorder_golden.jsonl"


def tiny_trace():
    """A deterministic 20-instruction trace (one block walked twice)."""
    instrs = [
        Instruction(Opcode.ADD, dests=(k % 4,), srcs=((k + 1) % 8,))
        for k in range(10)
    ]
    program = Program([BasicBlock(0, instrs)])
    return materialize(program, [0, 0])


def app_trace():
    """A small generated app trace with real branch/stall behaviour."""
    return generate(get_profile("Music"), walk_blocks=60).trace()


class TestGoldenFile:
    def test_tiny_trace_matches_golden(self):
        recorder = FlightRecorder()
        simulate(tiny_trace(), recorder=recorder)
        assert recorder.to_jsonl() == GOLDEN.read_text()

    def test_golden_shape(self):
        records = parse_jsonl(GOLDEN.read_text())
        header = records[0]
        assert header[0] == "R"
        assert header[1]["instructions"] == 20
        assert header[1]["config"] == GOOGLE_TABLET.name
        instr_records = [r for r in records if r[0] == "I"]
        assert len(instr_records) == 20
        for record in instr_records:
            _tag, _pos, _pc, head, fetch, dec, dsp, iss, cmp_c, commit = \
                record
            assert head <= fetch <= dec <= dsp <= iss < cmp_c <= commit


class TestObserverInvariants:
    def test_simstats_bit_identical_with_recorder(self):
        trace = app_trace()
        recorder = FlightRecorder()
        with_rec = simulate(trace, recorder=recorder)
        without = simulate(trace)
        assert with_rec.to_dict() == without.to_dict()
        assert recorder.runs == 1

    def test_stall_causes_sum_to_fetch_stalls(self):
        trace = app_trace()
        recorder = FlightRecorder()
        stats = simulate(trace, recorder=recorder)
        totals = recorder.stall_totals()
        assert totals == stats.fetch.stall_counts()
        assert set(totals) == set(STALL_CAUSES)
        assert sum(totals.values()) > 0  # a real app does stall
        assert totals["icache"] + totals["branch"] + totals["switch"] \
            == stats.fetch.stall_for_i
        assert totals["backpressure"] == stats.fetch.stall_for_rd

    def test_max_cycles_cutoff_records_partial_pipeline(self):
        trace = app_trace()
        recorder = FlightRecorder()
        stats = simulate(trace, max_cycles=30, recorder=recorder)
        records = recorder.records()
        instr_records = [r for r in records if r[0] == "I"]
        # Only instructions that entered the pipeline are recorded, and
        # the ones past commit match the committed count exactly.
        assert 0 < len(instr_records) < len(trace)
        committed = [r for r in instr_records if r[9] >= 0]
        assert len(committed) == stats.instructions


class TestFileBackend:
    def test_env_knob_appends_runs(self, tmp_path, monkeypatch):
        out = tmp_path / "flight.jsonl"
        monkeypatch.setenv("REPRO_FLIGHT_RECORDER", str(out))
        trace = tiny_trace()
        simulate(trace)
        simulate(trace)
        records = parse_jsonl(out.read_text())
        assert sum(1 for r in records if r[0] == "R") == 2
        assert sum(1 for r in records if r[0] == "I") == 40

    def test_unset_env_means_no_recorder(self, monkeypatch):
        monkeypatch.delenv("REPRO_FLIGHT_RECORDER", raising=False)
        assert FlightRecorder.from_env() is None


class TestRle:
    def test_merges_consecutive_same_cause(self):
        stalls = [(5, 1), (6, 1), (7, 1), (9, 1), (10, 2), (11, 2)]
        assert _rle(stalls) == [(1, 5, 3), (1, 9, 1), (2, 10, 2)]

    def test_empty(self):
        assert _rle([]) == []


class TestView:
    def test_render_sections(self):
        recorder = FlightRecorder()
        simulate(app_trace(), recorder=recorder)
        text = render(recorder.records(), top=5)
        assert "per-stage residency" in text
        assert "issue_wait" in text
        assert "top 5 slowest instructions" in text
        assert "fetch stalls by cause" in text
        for cause in STALL_CAUSES:
            assert cause in text

    def test_cli(self, tmp_path, capsys):
        out = tmp_path / "flight.jsonl"
        recorder = FlightRecorder(path=str(out))
        simulate(tiny_trace(), recorder=recorder)
        code = tview.main([str(out), "--top", "3"])
        assert code == 0
        assert "flight recorder: 1 run(s)" in capsys.readouterr().out

    def test_cli_empty_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert tview.main([str(empty)]) == 1


if __name__ == "__main__":
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    recorder = FlightRecorder()
    simulate(tiny_trace(), recorder=recorder)
    GOLDEN.write_text(recorder.to_jsonl())
    print(f"wrote {GOLDEN} ({len(recorder.lines)} records)")
