"""Multi-host fleet + shared cache: external TCP workers joining a
broker, the serve front's worker-discovery and cache endpoints, and a
second "host" (a subprocess with its own cache root) answering a whole
sweep from the first host's warm tier.

Everything runs over 127.0.0.1, but through the exact code paths a real
second machine would use: ``python -m repro.dispatch.worker --connect``
subprocesses, the ``join`` discovery message, and the
``remote:HOST:PORT`` cache backend against a live serve wire front.
"""

import json
import os
import subprocess
import sys
import threading
import time

import pytest

from repro.cache import reset_cache
from repro.dispatch import RetryPolicy, TaskSpec
from repro.dispatch.fleet import PersistentFleet, parse_bind
from repro.experiments.runner import app_context, clear_cache
from repro.registry import HARDWARE_CONFIGS
from repro.serve import ServeServer
from repro.serve.client import ServeClient, ServeError

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
WALK = 60
FAST = RetryPolicy(timeout_s=60.0, max_attempts=3, backoff_base_s=0.01,
                   backoff_cap_s=0.05, heartbeat_s=0.1)
SPEC = {"apps": ["Music"], "schemes": ["baseline", "critic"],
        "walk_blocks": WALK}


@pytest.fixture(autouse=True)
def _fresh_state(tmp_path, monkeypatch):
    import repro.telemetry as telemetry

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_FLEET_TOKEN", raising=False)
    monkeypatch.delenv("REPRO_FLEET_BIND", raising=False)
    reset_cache()
    clear_cache()
    telemetry.reset()
    yield
    clear_cache()
    reset_cache()


def _spawn_worker(*argv):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.dispatch.worker", *argv],
        env=dict(os.environ, PYTHONPATH=SRC), cwd=REPO,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)


# -- module-level task body (pickled by reference into workers) --------------


def _double(x):
    return 2 * x


class TestParseBind:
    def test_shapes(self):
        assert parse_bind("") == ("127.0.0.1", 0)
        assert parse_bind("0.0.0.0") == ("0.0.0.0", 0)
        assert parse_bind("10.1.2.3:7019") == ("10.1.2.3", 7019)
        with pytest.raises(ValueError):
            parse_bind("host:notaport")


class TestExternalWorkers:
    def test_external_worker_joins_and_computes(self):
        fleet = PersistentFleet(jobs=0, policy=FAST,
                                bind="127.0.0.1:0", token="hunter2")
        proc = None
        try:
            host, port = fleet.broker.address
            proc = _spawn_worker("--connect", f"{host}:{port}",
                                 "--worker", "ext-1",
                                 "--token", "hunter2")
            for task_id in ("x1", "x2", "x3"):
                fleet.submit(TaskSpec(id=task_id, fn=_double,
                                      args=(int(task_id[1]),)))
            results = []
            deadline = time.monotonic() + 60
            while len(results) < 3:
                assert time.monotonic() < deadline, "external stalled"
                results.extend(fleet.poll())
                time.sleep(0.02)
            assert {r.task_id: r.value for r in results} == \
                {"x1": 2, "x2": 4, "x3": 6}
            # the external worker is counted, but was never spawned
            assert fleet.workers_external() == 1
            assert fleet.workers_spawned() == 0
        finally:
            fleet.shutdown(grace_s=15.0)
            if proc is not None:
                assert proc.wait(timeout=30) == 0
        assert fleet.workers_external() == 0

    def test_wrong_token_is_denied(self):
        fleet = PersistentFleet(jobs=0, policy=FAST,
                                bind="127.0.0.1:0", token="hunter2")
        try:
            host, port = fleet.broker.address
            proc = _spawn_worker("--connect", f"{host}:{port}",
                                 "--worker", "mallory",
                                 "--token", "wrong")
            out, err = proc.communicate(timeout=30)
            assert proc.returncode == 1
            assert "denied" in err
            assert fleet.workers_external() == 0
        finally:
            fleet.shutdown(grace_s=15.0)

    def test_jobs_zero_means_external_only(self):
        fleet = PersistentFleet(jobs=0, policy=FAST, bind="127.0.0.1:0")
        try:
            assert fleet.jobs == 0
            assert fleet.workers_alive() == 0
            assert fleet.workers_spawned() == 0
        finally:
            fleet.shutdown(grace_s=15.0)


class _ServerThread:
    """Run a ServeServer on its own event loop in a daemon thread."""

    def __init__(self, **kwargs) -> None:
        import asyncio

        self._asyncio = asyncio
        self.kwargs = kwargs
        self.server = None
        self.loop = None
        self.error = None
        self.ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        assert self.ready.wait(timeout=60), self.error
        assert self.error is None, self.error

    def _run(self) -> None:
        asyncio = self._asyncio

        async def main():
            try:
                self.server = ServeServer(**self.kwargs)
                await self.server.start()
                self.loop = asyncio.get_running_loop()
            except Exception as exc:
                self.error = exc
                raise
            finally:
                self.ready.set()
            await self.server.serve_forever()

        try:
            asyncio.run(main())
        except Exception:
            pass

    @property
    def wire(self):
        return ("127.0.0.1", self.server.wire_port)

    def stop(self) -> None:
        if self.loop is None or self.server is None \
                or self.loop.is_closed():
            return
        future = self._asyncio.run_coroutine_threadsafe(
            self.server.stop(grace_s=10.0), self.loop)
        future.result(timeout=60)
        self.thread.join(timeout=30)


@pytest.fixture
def inline_server():
    srv = _ServerThread(executor="inline", wire_port=0, http_port=0)
    yield srv
    srv.stop()


def _stats_key(scheme):
    ctx = app_context("Music", WALK)
    config = HARDWARE_CONFIGS.create("google-tablet")
    return ctx._stats_key(scheme, config, 5, 1.0)


class TestServeCacheEndpoint:
    def test_cache_get_round_trip(self, inline_server):
        with ServeClient(inline_server.wire) as client:
            key = _stats_key("baseline")
            cold = client.cache_get("stats", key)
            assert cold["type"] == "cache.blob" and not cold["hit"]
            list(client.sweep(SPEC, job_id="warmup"))
            warm = client.cache_get("stats", key)
            assert warm["hit"]
            stats = json.loads(warm["text"])
            ctx = app_context("Music", WALK)
            assert stats == ctx.stats("baseline").to_dict()

    def test_cache_get_requires_matching_token(self):
        srv = _ServerThread(executor="inline", wire_port=0, http_port=0,
                            token="s3cret")
        try:
            with ServeClient(srv.wire) as client:
                with pytest.raises(ServeError, match="token"):
                    client.cache_get("stats", "0" * 64)
                reply = client.cache_get("stats", "0" * 64,
                                         token="s3cret")
                assert reply["type"] == "cache.blob"
        finally:
            srv.stop()

    def test_join_on_inline_server_is_an_error(self, inline_server):
        with ServeClient(inline_server.wire) as client:
            with pytest.raises(ServeError, match="inline"):
                client.fleet_info()


class TestServeWithExternalWorker:
    def test_discovered_worker_computes_sweep(self):
        """The full multi-host loop: a serve front with *zero* local
        workers, one external worker wired up via ``--discover``, and a
        sweep whose every cold cell executes on that worker."""
        srv = _ServerThread(executor="fleet", workers=0, wire_port=0,
                            http_port=0, fleet_bind="127.0.0.1:0",
                            token="tok", policy=FAST)
        proc = None
        try:
            host, port = srv.wire
            proc = _spawn_worker("--discover", f"{host}:{port}",
                                 "--worker", "ext-b", "--token", "tok")
            with ServeClient(srv.wire, timeout_s=120) as client:
                fleet = client.fleet_info(token="tok")
                assert fleet["type"] == "fleet"
                assert fleet["token_required"] is True
                done = list(client.sweep(SPEC, job_id="ext"))[-1]
            assert done["computed"] == 2 and done["failed"] == 0
            assert srv.server.fleet.workers_spawned() == 0
            # inline re-check: external results are bit-identical
            ctx = app_context("Music", WALK)
            ctx.stats("baseline"), ctx.stats("critic")
        finally:
            srv.stop()
            if proc is not None:
                assert proc.wait(timeout=30) == 0


_HOST_B = """
import json, os
from repro.cache import get_cache
from repro.experiments.runner import app_context
ctx = app_context("Music", %d)
stats = {scheme: ctx.stats(scheme).to_dict()
         for scheme in ("baseline", "critic")}
cache = get_cache()
print(json.dumps({"hits": cache.hits, "misses": cache.misses,
                  "backend": cache.backend_spec(), "stats": stats}))
""" % WALK


class TestSharedWarmTier:
    def test_fresh_host_sweep_served_entirely_from_remote(
            self, inline_server, tmp_path):
        # Host A computes the grid cold.
        with ServeClient(inline_server.wire, timeout_s=120) as client:
            done = list(client.sweep(SPEC, job_id="cold"))[-1]
        assert done["computed"] == 2 and done["failed"] == 0

        # Host B: a fresh cache root, remote read-through to host A.
        root_b = tmp_path / "host-b"
        host, port = inline_server.wire
        env = dict(os.environ, PYTHONPATH=SRC)
        env["REPRO_CACHE_DIR"] = str(root_b)
        env["REPRO_CACHE_BACKEND"] = f"remote:{host}:{port}"
        out = subprocess.run(
            [sys.executable, "-c", _HOST_B], env=env, cwd=REPO,
            capture_output=True, text=True, timeout=120)
        assert out.returncode == 0, out.stderr
        report = json.loads(out.stdout)

        # Zero recomputed cells: every stats lookup hit the remote tier.
        assert report["hits"] == 2 and report["misses"] == 0
        assert report["backend"] == f"remote:{host}:{port}"
        # ...bit-identical to host A's own answers.
        ctx = app_context("Music", WALK)
        for scheme in ("baseline", "critic"):
            assert report["stats"][scheme] == \
                ctx.stats(scheme).to_dict()
        # ...and written back into host B's local tier.
        blobs = list((root_b / "v3" / "stats").rglob("*.json"))
        assert len(blobs) == 2
