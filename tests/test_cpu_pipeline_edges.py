"""Edge-case tests for the pipeline simulator."""

import pytest

from repro.cpu import GOOGLE_TABLET, Simulator, simulate
from repro.isa import Cond, Encoding, Instruction, Opcode
from repro.trace import BasicBlock, Program, Trace, TraceEntry, materialize


def alu(dest, *srcs, imm=None):
    return Instruction(Opcode.ADD, dests=(dest,), srcs=srcs, imm=imm)


class TestDegenerateTraces:
    def test_empty_trace(self):
        stats = simulate(Trace([]))
        assert stats.instructions == 0
        assert stats.cycles == 0

    def test_single_instruction(self):
        program = Program([BasicBlock(0, [alu(0, 1)])])
        stats = simulate(materialize(program, [0]))
        assert stats.instructions == 1
        assert stats.cycles >= 1

    def test_trace_ending_in_branch(self):
        program = Program([BasicBlock(0, [
            alu(0, 1),
            Instruction(Opcode.CMP, srcs=(0, 1)),
            Instruction(Opcode.B, cond=Cond.NE, target=0),
        ])])
        stats = simulate(materialize(program, [0]))
        assert stats.instructions == 3

    def test_trace_ending_in_cdp(self):
        """A trailing CDP with nothing after it must not hang."""
        program = Program([BasicBlock(0, [
            alu(0, 1),
            Instruction(Opcode.CDP, cdp_cover=1,
                        encoding=Encoding.THUMB16),
        ])])
        stats = simulate(materialize(program, [0]))
        assert stats.instructions == 2

    def test_all_long_latency(self):
        program = Program([BasicBlock(0, [
            Instruction(Opcode.VDIV, dests=(k % 6,), srcs=(6, 7))
            for k in range(8)
        ])])
        stats = simulate(materialize(program, [0]))
        assert stats.instructions == 8
        # One FP unit, 18-cycle latency each: heavily serialized.
        assert stats.cycles >= 8


class TestMispredictRecovery:
    def test_mispredicted_return_does_not_hang(self):
        # BX with an empty RAS mispredicts; redirect must still resolve.
        program = Program([BasicBlock(0, [
            alu(0, 1),
            Instruction(Opcode.BX, srcs=(14,)),
            alu(2, 0),
        ])])
        stats = simulate(materialize(program, [0]))
        assert stats.instructions == 3
        assert stats.branch_mispredicts >= 1

    def test_redirect_penalty_respected(self):
        from dataclasses import replace
        program = Program([BasicBlock(0, [
            Instruction(Opcode.BX, srcs=(14,)),
            alu(2, 0),
        ])])
        fast = simulate(materialize(program, [0]),
                        replace(GOOGLE_TABLET, redirect_penalty=0))
        slow = simulate(materialize(program, [0]),
                        replace(GOOGLE_TABLET, redirect_penalty=20))
        assert slow.cycles > fast.cycles


class TestStructuralLimits:
    def test_rob_never_exceeds_capacity(self):
        from dataclasses import replace
        config = replace(GOOGLE_TABLET, rob_entries=8)
        program = Program([BasicBlock(0, [
            alu(k % 8, 9, imm=1) for k in range(64)
        ])])
        sim = Simulator(materialize(program, [0] * 4), config)
        stats = sim.run()
        # Mean occupancy can never exceed the capacity.
        assert stats.rob_avg_occupancy <= 8 + 1e-9

    def test_issue_queue_bounded(self):
        from dataclasses import replace
        config = replace(GOOGLE_TABLET, issue_queue_entries=4)
        program = Program([BasicBlock(0, [
            alu(k % 8, 9, imm=1) for k in range(64)
        ])])
        stats = simulate(materialize(program, [0] * 4), config)
        assert stats.iq_avg_occupancy <= 4 + 1e-9

    def test_narrow_everything_still_completes(self):
        from dataclasses import replace
        config = replace(
            GOOGLE_TABLET, fetch_bytes_per_cycle=4, decode_width=1,
            rename_width=1, issue_width=1, commit_width=1,
            rob_entries=4, issue_queue_entries=2,
            fetch_queue_entries=2, decode_buffer_entries=1,
            scheduling_window=1,
        )
        program = Program([BasicBlock(0, [alu(k % 6, 7) for k in range(20)])])
        stats = simulate(materialize(program, [0]), config)
        assert stats.instructions == 20

    def test_unrestricted_scheduler_path(self):
        """scheduling_window=0 exercises the pure ready-list issue path."""
        from dataclasses import replace
        config = replace(GOOGLE_TABLET, scheduling_window=0)
        program = Program([BasicBlock(0, [alu(k % 6, 7) for k in range(40)])])
        stats = simulate(materialize(program, [0] * 3), config)
        assert stats.instructions == 120

    def test_backend_priority_with_window(self):
        from dataclasses import replace
        config = replace(GOOGLE_TABLET, backend_priority=True)
        program = Program([BasicBlock(0, [alu(k % 6, 7) for k in range(40)])])
        stats = simulate(materialize(program, [0] * 2), config)
        assert stats.instructions == 80
