"""Tests for run manifests and the manifest-vs-baseline comparator."""

import json

import pytest

from repro import telemetry
from repro.cache import reset_cache
from repro.telemetry import compare as tcompare
from repro.telemetry import manifest as tmanifest


@pytest.fixture(autouse=True)
def _fresh_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    reset_cache()
    telemetry.reset()
    yield
    telemetry.reset()
    reset_cache()


class TestManifest:
    def _record(self):
        with telemetry.phase("simulate"):
            pass
        telemetry.count("cache.hit.stats", 2)
        return tmanifest.record_run(
            "run_apps",
            apps=["Music"],
            schemes=["baseline"],
            configs=["google-tablet"],
            walk_blocks=120,
            seeds={"Music": 17},
            wall_s=1.25,
        )

    def test_record_run_writes_last_run_and_log(self):
        path = self._record()
        assert path is not None and path.name == tmanifest.LAST_RUN
        manifest = tmanifest.load_manifest(str(path))
        assert manifest["kind"] == "run_apps"
        assert manifest["apps"] == ["Music"]
        assert manifest["seeds"] == {"Music": 17}
        assert manifest["wall_s"] == 1.25
        assert manifest["counters"]["cache.hit.stats"] == 2
        assert manifest["phases"]["simulate"]["calls"] == 1
        assert len(manifest["config_hash"]) == 64
        log = path.parent / tmanifest.LOG
        assert json.loads(log.read_text()) == manifest

    def test_config_hash_tracks_invocation(self):
        base = dict(apps=["Music"], schemes=["baseline"],
                    configs=["google-tablet"], walk_blocks=120,
                    seeds={"Music": 17}, wall_s=0.0)
        a = tmanifest.build_manifest("run_apps", **base)
        b = tmanifest.build_manifest("run_apps", **base)
        changed = tmanifest.build_manifest(
            "run_apps", **{**base, "walk_blocks": 700})
        assert a["config_hash"] == b["config_hash"]
        assert a["config_hash"] != changed["config_hash"]

    def test_load_manifest_takes_last_jsonl_line(self, tmp_path):
        log = tmp_path / "manifests.jsonl"
        log.write_text('{"wall_s": 1}\n{"wall_s": 2}\n')
        assert tmanifest.load_manifest(str(log))["wall_s"] == 2

    def test_disabled_cache_skips_manifest(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        reset_cache()
        assert self._record() is None


class TestCompare:
    MANIFEST = {"phases": {
        "simulate": {"calls": 2, "total_s": 1.0},      # mean 0.5
        "generate": {"calls": 1, "total_s": 0.1},      # mean 0.1
        "new_phase": {"calls": 1, "total_s": 9.9},
    }}
    BASELINE = {"phases": {
        "simulate": {"mean_s": 0.4},                   # ratio 1.25
        "generate": 0.1,                               # ratio 1.0
        "gone_phase": {"mean_s": 3.0},
    }}

    def test_compare_rows_and_threshold(self):
        rows = tcompare.compare(self.MANIFEST, self.BASELINE, threshold=0.2)
        assert [r["phase"] for r in rows] == ["generate", "simulate"]
        by_name = {r["phase"]: r for r in rows}
        assert by_name["simulate"]["ratio"] == pytest.approx(1.25)
        assert by_name["simulate"]["regressed"]
        assert not by_name["generate"]["regressed"]
        # A looser threshold clears the 25% regression.
        assert tcompare.regressions(
            self.MANIFEST, self.BASELINE, threshold=0.3) == []

    def test_one_sided_phases_ignored(self):
        names = [r["phase"]
                 for r in tcompare.compare(self.MANIFEST, self.BASELINE)]
        assert "new_phase" not in names
        assert "gone_phase" not in names

    def test_noise_floor_skipped(self):
        rows = tcompare.compare(
            {"phases": {"tiny": {"mean_s": 1.0}}},
            {"phases": {"tiny": {"mean_s": 1e-6}}},
        )
        assert rows == []

    def test_format_rows_flags_regressions(self):
        rows = tcompare.compare(self.MANIFEST, self.BASELINE)
        text = tcompare.format_rows(rows)
        assert "REGRESSED" in text and "simulate" in text

    def test_cli(self, tmp_path, capsys):
        manifest_path = tmp_path / "last_run.json"
        manifest_path.write_text(json.dumps(self.MANIFEST))
        baseline_path = tmp_path / "BENCH_perf.json"
        baseline_path.write_text(json.dumps(self.BASELINE))

        code = tcompare.main([str(manifest_path), str(baseline_path)])
        out = capsys.readouterr().out
        assert code == 0  # informational by default
        assert "1 of 2 phases regressed" in out

        code = tcompare.main([str(manifest_path), str(baseline_path),
                              "--strict"])
        assert code == 1
        code = tcompare.main([str(manifest_path), str(baseline_path),
                              "--strict", "--threshold", "0.5"])
        assert code == 0

    def test_cli_json_output(self, tmp_path, capsys):
        """--json prints a machine-readable report and gates on
        regressions (it implies --strict)."""
        manifest_path = tmp_path / "last_run.json"
        manifest_path.write_text(json.dumps(self.MANIFEST))
        baseline_path = tmp_path / "BENCH_perf.json"
        baseline_path.write_text(json.dumps(self.BASELINE))

        code = tcompare.main([str(manifest_path), str(baseline_path),
                              "--json"])
        report = json.loads(capsys.readouterr().out)
        assert code == 1
        assert report["regressed"] == 1 and report["compared"] == 2
        by_name = {r["phase"]: r for r in report["phases"]}
        assert by_name["simulate"]["regressed"]
        assert by_name["simulate"]["ratio"] == pytest.approx(1.25)

        code = tcompare.main([str(manifest_path), str(baseline_path),
                              "--json", "--threshold", "0.5"])
        report = json.loads(capsys.readouterr().out)
        assert code == 0
        assert report["regressed"] == 0
        assert report["threshold"] == pytest.approx(0.5)


class TestBenchBaselineFile:
    def test_repo_bench_file_is_comparable(self):
        """BENCH_perf.json must stay a valid compare baseline."""
        with open("BENCH_perf.json") as handle:
            bench = json.load(handle)
        means = tcompare.phase_means(bench)
        assert "simulate" in means
        assert all(v > 0 for v in means.values())
