"""Unit tests for the component registry core and the built-in registries."""

import pytest

from repro.cpu import GOOGLE_TABLET
from repro.registry import (
    BRANCH_PREDICTORS,
    HARDWARE_CONFIGS,
    ICACHE_POLICIES,
    PREFETCHERS,
    SCHEME_RECIPES,
    component_identity,
)
from repro.registry.core import Registry, RegistryError


class TestRegistryCore:
    def test_register_decorator_and_lookup(self):
        reg = Registry("widget")

        @reg.register("alpha", version=2)
        def alpha():
            return "a"

        assert reg.get("alpha") is alpha
        assert reg.create("alpha") == "a"
        assert reg.version("alpha") == 2
        assert reg.identity("alpha") == "alpha@2"

    def test_register_direct_object(self):
        reg = Registry("widget")
        obj = object()
        returned = reg.register("thing", obj)
        assert returned is obj
        assert reg.get("thing") is obj

    def test_duplicate_registration_raises(self):
        reg = Registry("widget")
        reg.register("alpha", object())
        with pytest.raises(RegistryError, match="duplicate widget"):
            reg.register("alpha", object())

    def test_overwrite_replaces(self):
        reg = Registry("widget")
        reg.register("alpha", "old")
        reg.register("alpha", "new", version=2, overwrite=True)
        assert reg.get("alpha") == "new"
        assert reg.identity("alpha") == "alpha@2"

    def test_unknown_key_did_you_mean(self):
        reg = Registry("widget")
        reg.register("critic", object())
        reg.register("baseline", object())
        with pytest.raises(RegistryError) as exc:
            reg.get("crtic")
        message = str(exc.value)
        assert "unknown widget 'crtic'" in message
        assert "did you mean 'critic'" in message
        assert "baseline" in message  # the known-names list

    def test_unknown_key_without_close_match(self):
        reg = Registry("widget")
        reg.register("alpha", object())
        with pytest.raises(RegistryError) as exc:
            reg.get("zzzzzz")
        assert "did you mean" not in str(exc.value)

    def test_error_is_key_and_value_error(self):
        reg = Registry("widget")
        with pytest.raises(KeyError):
            reg.get("missing")
        with pytest.raises(ValueError):
            reg.get("missing")

    def test_unregister(self):
        reg = Registry("widget")
        reg.register("alpha", object())
        reg.unregister("alpha")
        assert "alpha" not in reg
        with pytest.raises(RegistryError):
            reg.unregister("alpha")

    def test_scoped_new_name_removed_on_exit(self):
        reg = Registry("widget")
        with reg.scoped("temp", "obj"):
            assert reg.get("temp") == "obj"
        assert "temp" not in reg

    def test_scoped_override_restores_previous(self):
        reg = Registry("widget")
        reg.register("alpha", "original", version=3)
        with reg.scoped("alpha", "override", version=9):
            assert reg.get("alpha") == "override"
            assert reg.identity("alpha") == "alpha@9"
        assert reg.get("alpha") == "original"
        assert reg.identity("alpha") == "alpha@3"

    def test_scoped_restores_on_exception(self):
        reg = Registry("widget")
        reg.register("alpha", "original")
        with pytest.raises(RuntimeError):
            with reg.scoped("alpha", "override"):
                raise RuntimeError("boom")
        assert reg.get("alpha") == "original"

    def test_names_keep_registration_order(self):
        reg = Registry("widget")
        for name in ("zeta", "alpha", "mid"):
            reg.register(name, object())
        assert reg.names() == ("zeta", "alpha", "mid")
        assert list(reg) == ["zeta", "alpha", "mid"]
        assert len(reg) == 3

    def test_create_forwards_arguments(self):
        reg = Registry("widget")
        reg.register("pair", lambda a, b=1: (a, b))
        assert reg.create("pair", 5, b=7) == (5, 7)


class TestBuiltinRegistries:
    def test_scheme_canonical_order(self):
        names = SCHEME_RECIPES.names()
        assert names[:8] == (
            "baseline", "hoist", "critic", "critic_ideal",
            "branch", "opp16", "compress", "opp16_critic",
        )

    def test_runner_schemes_mirror_registry(self):
        from repro.experiments.runner import SCHEMES
        assert SCHEMES == (
            "baseline", "hoist", "critic", "critic_ideal",
            "branch", "opp16", "compress", "opp16_critic",
        )

    def test_builtin_identities(self):
        assert HARDWARE_CONFIGS.identity("google-tablet") == "google-tablet@1"
        assert BRANCH_PREDICTORS.identity("two-level") == "two-level@1"
        assert ICACHE_POLICIES.identity("trrip") == "trrip@1"
        assert PREFETCHERS.identity("critical-nextline") == \
            "critical-nextline@1"

    def test_component_identity_of_baseline(self):
        identity = component_identity(GOOGLE_TABLET)
        assert identity["branch_predictor"] == "two-level@1"
        assert identity["icache_policy"] == "lru@1"
        assert identity["prefetchers"] == []

    def test_component_identity_with_overrides(self):
        config = GOOGLE_TABLET.with_components(
            prefetchers=("critical-nextline",), icache_policy="trrip",
        )
        identity = component_identity(config)
        assert identity["icache_policy"] == "trrip@1"
        assert identity["prefetchers"] == ["critical-nextline@1"]
        assert config.name == "google-tablet+pf=critical-nextline+i$=trrip"

    def test_hardware_factory_unknown_suggests(self):
        with pytest.raises(RegistryError, match="google-tablet"):
            HARDWARE_CONFIGS.create("google-tablte")
