"""Schema tests for the Chrome-trace/Perfetto exporter.

The Trace Event Format contract that Perfetto/chrome://tracing actually
enforce: a JSON object with a ``traceEvents`` list, complete events with
``name``/``ph``/``ts``/``dur``/``pid``/``tid``, counter events carrying
``args.value``, and metadata events naming the processes.  These tests
pin that shape (plus the one-pid-per-worker layout) so an export always
loads in the viewers.
"""

import io
import json

import pytest

from repro import telemetry
from repro.telemetry import events
from repro.telemetry.export import (
    build_chrome_trace,
    export_chrome_trace,
    main,
    read_span_dump,
)


@pytest.fixture(autouse=True)
def _clean_telemetry(monkeypatch):
    monkeypatch.setenv("REPRO_SPANS", "1")
    telemetry.reset()
    yield
    telemetry.reset()


def _span_dump_lines():
    """A realistic dump: local spans + a merged worker snapshot + meta."""
    with telemetry.span("run_apps", apps=2):
        with telemetry.span("simulate"):
            pass
    worker = {
        "pid": 4242,
        "phases": {"simulate": [1, 0.5, 0.5]},
        "counters": {"simulate.instructions": 1000},
        "spans": [{
            "name": "simulate", "dur_s": 0.5, "self_s": 0.5,
            "start_unix": 1000.25,
        }],
        "dropped_spans": 0,
    }
    telemetry.merge_snapshot(worker)
    buf = io.StringIO()
    telemetry.dump_spans(buf)
    buf.write(json.dumps({
        "_meta": {"pid": 99, "counters": {"cache.hit.trace": 3}},
    }) + "\n")
    return buf.getvalue().splitlines(keepends=True)


class TestReadSpanDump:
    def test_splits_spans_and_meta(self):
        roots, metas = read_span_dump(_span_dump_lines())
        assert [r["name"] for r in roots] == ["run_apps", "simulate"]
        assert metas == [{"pid": 99, "counters": {"cache.hit.trace": 3}}]

    def test_tolerates_garbage_lines(self):
        roots, metas = read_span_dump(
            ["not json\n", "\n", '{"no_name": 1}\n',
             '{"name": "x", "dur_s": 0.1}\n'])
        assert len(roots) == 1 and metas == []


class TestChromeTraceSchema:
    def test_top_level_shape(self):
        roots, metas = read_span_dump(_span_dump_lines())
        trace = build_chrome_trace(roots, metas)
        assert isinstance(trace["traceEvents"], list)
        assert trace["displayTimeUnit"] == "ms"
        json.dumps(trace)  # JSON-serializable end to end

    def test_complete_events_have_required_fields(self):
        roots, metas = read_span_dump(_span_dump_lines())
        trace = build_chrome_trace(roots, metas)
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert xs, "no complete events emitted"
        for event in xs:
            assert set(event) >= {"name", "ph", "ts", "dur", "pid", "tid"}
            assert event["ts"] >= 0 and event["dur"] >= 0

    def test_one_pid_per_worker_with_process_names(self):
        roots, metas = read_span_dump(_span_dump_lines())
        trace = build_chrome_trace(roots, metas)
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        # The merged worker span carries pid=4242; local spans pid=0.
        assert {e["pid"] for e in xs} == {0, 4242}
        names = {e["pid"]: e["args"]["name"]
                 for e in trace["traceEvents"] if e["ph"] == "M"}
        assert names[0] == "parent"
        assert names[4242] == "worker-4242"

    def test_meta_counters_become_counter_tracks(self):
        roots, metas = read_span_dump(_span_dump_lines())
        trace = build_chrome_trace(roots, metas)
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert any(e["name"] == "cache.hit.trace"
                   and e["args"]["value"] == 3 for e in counters)

    def test_event_stream_counter_tracks_and_instants(self):
        roots, metas = read_span_dump(_span_dump_lines())
        stream = [
            {"ts": 1000.5, "pid": 7, "kind": "sweep.cell.done",
             "instructions": 500},
            {"ts": 1000.6, "pid": 7, "kind": "sweep.cell.done",
             "instructions": 250},
            {"ts": 1000.7, "pid": 7, "kind": "dispatch.attempt",
             "outcome": "worker-died", "task": "Music|google-tablet"},
        ]
        trace = build_chrome_trace(roots, metas, events=stream)
        done = [e for e in trace["traceEvents"]
                if e["ph"] == "C" and e["name"] == "cells_done"]
        assert [e["args"]["value"] for e in done] == [1, 2]
        instr = [e for e in trace["traceEvents"]
                 if e["ph"] == "C" and e["name"] == "instructions"]
        assert [e["args"]["value"] for e in instr] == [500, 750]
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "dispatch.attempt"
        assert instants[0]["args"]["outcome"] == "worker-died"

    def test_legacy_spans_without_start_pack_sequentially(self):
        roots = [{
            "name": "root", "dur_s": 1.0,
            "children": [
                {"name": "a", "dur_s": 0.4},
                {"name": "b", "dur_s": 0.5},
            ],
        }]
        trace = build_chrome_trace(roots, [])
        by_name = {e["name"]: e for e in trace["traceEvents"]
                   if e["ph"] == "X"}
        assert by_name["a"]["ts"] == by_name["root"]["ts"]
        assert by_name["b"]["ts"] == pytest.approx(
            by_name["a"]["ts"] + 0.4e6)


class TestExportCli:
    def test_cli_writes_perfetto_loadable_json(self, tmp_path):
        spans = tmp_path / "spans.jsonl"
        spans.write_text("".join(_span_dump_lines()))
        log = tmp_path / "events.jsonl"
        events.set_path(str(log))
        events.emit("sweep.cell.done", instructions=10)
        events.set_path(None)
        out = tmp_path / "trace.json"
        assert main([str(spans), "--events", str(log),
                     "-o", str(out)]) == 0
        trace = json.loads(out.read_text())
        assert isinstance(trace["traceEvents"], list)
        assert {e["ph"] for e in trace["traceEvents"]} >= {"X", "M"}

    def test_cli_missing_input_fails_cleanly(self, tmp_path):
        assert main([str(tmp_path / "nope.jsonl")]) == 2

    def test_export_function_counts_events(self, tmp_path):
        out = io.StringIO()
        written = export_chrome_trace(_span_dump_lines(), out)
        assert written == len(
            json.loads(out.getvalue())["traceEvents"])

    def test_spans_env_path_dump_feeds_exporter(self, tmp_path,
                                                monkeypatch):
        """REPRO_SPANS=<path> dump (spans + _meta trailer) round-trips."""
        import importlib

        # telemetry.spans (the accessor function) shadows the submodule
        spans_mod = importlib.import_module("repro.telemetry.spans")

        dump = tmp_path / "spans.jsonl"
        monkeypatch.setenv("REPRO_SPANS", str(dump))
        with telemetry.span("work"):
            pass
        telemetry.count("cache.hit.trace", 2)
        spans_mod._dump_spans_at_exit()
        roots, metas = read_span_dump(
            dump.read_text().splitlines(keepends=True))
        assert [r["name"] for r in roots] == ["work"]
        assert metas[0]["counters"] == {"cache.hit.trace": 2}
