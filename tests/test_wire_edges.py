"""Wire-framing edge cases: frame-size boundary, mid-frame EOF, and
interleaved writers on a shared locked socket.

``MAX_FRAME`` is monkeypatched down to a few KiB so the boundary cases
(exactly at the cap, one byte over) don't allocate 256 MiB.
"""

import pickle
import socket
import threading

import pytest

from repro.dispatch import wire

SMALL_CAP = 4096


@pytest.fixture
def pair():
    left, right = socket.socketpair()
    left.settimeout(10)
    right.settimeout(10)
    yield left, right
    left.close()
    right.close()


@pytest.fixture
def small_cap(monkeypatch):
    monkeypatch.setattr(wire, "MAX_FRAME", SMALL_CAP)
    return SMALL_CAP


class TestFrameSizeBoundary:
    def test_frame_at_exactly_max_is_accepted(self, pair, small_cap):
        left, right = pair
        payload = b"x" * small_cap
        sender = threading.Thread(
            target=wire.send_frame, args=(left, payload))
        sender.start()
        assert wire.recv_frame(right) == payload
        sender.join()

    def test_frame_one_over_max_is_rejected(self, pair, small_cap):
        left, right = pair
        # Hand-craft the header: send_frame would block on a payload the
        # reader refuses to drain, so only the envelope goes out.
        left.sendall(wire._HEADER.pack(small_cap + 1))
        with pytest.raises(wire.WireError, match="oversized"):
            wire.recv_frame(right)

    def test_frame_one_under_max_is_accepted(self, pair, small_cap):
        left, right = pair
        payload = b"x" * (small_cap - 1)
        sender = threading.Thread(
            target=wire.send_frame, args=(left, payload))
        sender.start()
        assert wire.recv_frame(right) == payload
        sender.join()


class TestMidFrameEOF:
    def test_eof_inside_header(self, pair):
        left, right = pair
        left.sendall(b"\x00\x00")  # half a length header
        left.close()
        with pytest.raises(wire.WireError, match="mid-frame"):
            wire.recv_frame(right)

    def test_eof_inside_payload(self, pair):
        left, right = pair
        left.sendall(wire._HEADER.pack(100) + b"only ten b")
        left.close()
        with pytest.raises(wire.WireError, match="mid-frame"):
            wire.recv_frame(right)

    def test_clean_eof_before_any_frame(self, pair):
        left, right = pair
        left.close()
        with pytest.raises(wire.WireError):
            wire.recv_frame(right)

    def test_undecodable_payload_is_wire_error(self, pair):
        left, right = pair
        wire.send_frame(left, b"\x80\x05 this is not a pickle")
        with pytest.raises(wire.WireError, match="undecodable"):
            wire.recv_msg(right)


class TestInterleavedWriters:
    def test_locked_writers_never_interleave_frames(self, pair):
        """Many threads sharing one socket + lock (the worker's
        heartbeat-vs-result pattern): the reader must see every message
        intact, exactly once."""
        left, right = pair
        lock = threading.Lock()
        writers, per_writer = 6, 40
        # Vary message size across the socket buffer boundary so some
        # sendalls need multiple syscalls — the racy case the lock
        # exists for.
        def blast(tag):
            for n in range(per_writer):
                message = {"tag": tag, "n": n,
                           "pad": "p" * (64 + 977 * (n % 9))}
                wire.send_msg(left, message, lock=lock)

        threads = [
            threading.Thread(target=blast, args=(f"w{n}",))
            for n in range(writers)
        ]
        seen = []
        def drain():
            for _ in range(writers * per_writer):
                seen.append(wire.recv_msg(right))

        reader = threading.Thread(target=drain)
        reader.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        reader.join()
        assert len(seen) == writers * per_writer
        for tag in (f"w{n}" for n in range(writers)):
            ns = [m["n"] for m in seen if m["tag"] == tag]
            assert ns == sorted(ns) and len(ns) == per_writer

    def test_pickled_roundtrip_is_exact(self, pair):
        left, right = pair
        message = {"nested": [1, 2.5, ("a", b"bytes")],
                   "big": list(range(500))}
        sender = threading.Thread(
            target=wire.send_msg, args=(left, message))
        sender.start()
        assert wire.recv_msg(right) == message
        sender.join()
