"""Tests for the generator's memory-behaviour contracts."""

import pytest

from repro.trace import compute_producers
from repro.workloads import generate, get_profile
from repro.workloads.generator import (
    BIG_REGION_BASE,
    HEAP_BASE,
    STORE_REGION_BASE,
)


@pytest.fixture(scope="module")
def mobile():
    return generate(get_profile("Photogallery"), walk_blocks=200)


@pytest.fixture(scope="module")
def spec():
    return generate(get_profile("mcf"), walk_blocks=500)


class TestRegionSeparation:
    def test_stores_never_alias_loads(self, mobile):
        """The generator's core invariant: stores live in their own region
        so no accidental store->load dependence severs a chain."""
        load_addrs = set()
        store_addrs = set()
        for entry in mobile.trace():
            if entry.instr.is_load:
                load_addrs.add(entry.mem_addr & ~0x3)
            elif entry.instr.is_store:
                store_addrs.add(entry.mem_addr & ~0x3)
        assert not load_addrs & store_addrs

    def test_store_region_base(self, mobile):
        for entry in mobile.trace():
            if entry.instr.is_store:
                assert entry.mem_addr >= STORE_REGION_BASE

    def test_no_memory_producers_for_loads(self, mobile):
        """Consequence of region separation: loads have only register
        producers in this workload family."""
        trace = mobile.trace().window(0, 3000)
        producers = compute_producers(trace)
        for pos, entry in enumerate(trace.entries):
            if entry.instr.is_load:
                for p in producers[pos]:
                    assert not trace.entries[p].instr.is_store


class TestSpecStreaming:
    def test_big_region_loads_exist(self, spec):
        big = [e for e in spec.trace()
               if e.instr.is_load and e.mem_addr >= BIG_REGION_BASE]
        assert len(big) > 50

    def test_streams_are_wide(self, spec):
        """SPEC streaming loads must cover far more than the L2 so they
        genuinely reach DRAM (the substrate behind Fig 1a)."""
        footprint = {
            e.mem_addr // 64 for e in spec.trace()
            if e.instr.is_load and e.mem_addr >= BIG_REGION_BASE
        }
        # Far beyond the 64KB d-cache even at this small test scale
        # (footprint grows linearly with trace length).
        assert len(footprint) * 64 > 64 * 1024

    def test_hot_loads_stay_small(self, mobile):
        hot = {
            e.mem_addr // 64 for e in mobile.trace()
            if e.instr.is_load and e.mem_addr < BIG_REGION_BASE
        }
        # Hot data fits within a few hundred KB (d-cache friendly).
        assert len(hot) * 64 < 512 * 1024


class TestDeterminismAcrossScales:
    def test_prefix_stability(self):
        """A longer walk extends the shorter walk's prefix (same seed,
        same program) — apart from the budget-boundary tail where the
        shorter walk's function visit was cut off."""
        short = generate(get_profile("Email"), walk_blocks=80)
        long = generate(get_profile("Email"), walk_blocks=160)
        n = len(short.walk) - 10
        assert long.walk[:n] == short.walk[:n]
