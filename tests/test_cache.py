"""Tests for the content-addressed artifact cache and its runner wiring."""

import dataclasses

import pytest

import repro.cache as cache_mod
from repro.cache import ArtifactCache, artifact_key
from repro.cpu import GOOGLE_TABLET, simulate
from repro.experiments.runner import app_context, clear_cache, run_apps
from repro.profiler import FinderConfig, find_critic_profile
from repro.workloads import generate, get_profile


@pytest.fixture
def store(tmp_path):
    return ArtifactCache(root=str(tmp_path), enabled=True)


@pytest.fixture(scope="module")
def workload():
    return generate(get_profile("Email"), walk_blocks=60)


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    """Route the process-wide cache at a fresh directory for one test."""
    monkeypatch.setenv(cache_mod.ENV_DIR, str(tmp_path))
    monkeypatch.delenv(cache_mod.ENV_ENABLE, raising=False)
    cache_mod.reset_cache()
    clear_cache()
    yield tmp_path
    cache_mod.reset_cache()
    clear_cache()


class TestArtifactKey:
    def test_deterministic(self):
        profile = get_profile("Email")
        assert artifact_key("trace", profile=profile) \
            == artifact_key("trace", profile=profile)

    def test_walk_blocks_changes_key(self):
        profile = get_profile("Email")
        assert artifact_key("trace", profile=profile.scaled(0.5)) \
            != artifact_key("trace", profile=profile)

    def test_scheme_changes_key(self):
        profile = get_profile("Email")
        assert artifact_key("trace", profile=profile, scheme="critic") \
            != artifact_key("trace", profile=profile, scheme="baseline")

    def test_schema_bump_changes_key(self, monkeypatch):
        profile = get_profile("Email")
        before = artifact_key("trace", profile=profile)
        monkeypatch.setattr(cache_mod, "SCHEMA_VERSION",
                            cache_mod.SCHEMA_VERSION + 1)
        assert artifact_key("trace", profile=profile) != before

    def test_kind_changes_key(self):
        profile = get_profile("Email")
        assert artifact_key("trace", profile=profile) \
            != artifact_key("stats", profile=profile)

    def test_rejects_unserializable_params(self):
        with pytest.raises(TypeError):
            artifact_key("trace", fn=lambda: None)


class TestArtifactStore:
    def test_trace_round_trip(self, store, workload):
        trace = workload.trace()
        key = artifact_key("trace", profile=workload.profile)
        assert store.load_trace(key) is None
        store.store_trace(key, trace)
        loaded = store.load_trace(key)
        assert loaded is not None
        assert len(loaded) == len(trace)
        assert dataclasses.asdict(simulate(loaded)) \
            == dataclasses.asdict(simulate(trace))

    def test_profile_round_trip(self, store, workload):
        profile = find_critic_profile(
            workload.trace(), workload.program, FinderConfig(),
            app_name="Email",
        )
        key = artifact_key("critic_profile", profile=workload.profile)
        store.store_profile(key, profile)
        loaded = store.load_profile(key)
        assert loaded is not None
        assert loaded.records == profile.records
        assert loaded.profiled_instructions == profile.profiled_instructions

    def test_stats_round_trip(self, store, workload):
        stats = simulate(workload.trace())
        key = artifact_key("stats", profile=workload.profile,
                           config=GOOGLE_TABLET)
        store.store_stats(key, stats)
        loaded = store.load_stats(key)
        assert loaded is not None
        assert dataclasses.asdict(loaded) == dataclasses.asdict(stats)

    def test_schema_bump_invalidates(self, store, workload, monkeypatch):
        stats = simulate(workload.trace())
        key = artifact_key("stats", profile=workload.profile)
        store.store_stats(key, stats)
        monkeypatch.setattr(cache_mod, "SCHEMA_VERSION",
                            cache_mod.SCHEMA_VERSION + 1)
        # both the key and the on-disk namespace move
        assert store.load_stats(artifact_key(
            "stats", profile=workload.profile)) is None

    def test_disabled_store_is_noop(self, tmp_path, workload):
        store = ArtifactCache(root=str(tmp_path), enabled=False)
        stats = simulate(workload.trace())
        store.store_stats("0" * 64, stats)
        assert store.load_stats("0" * 64) is None
        assert list(tmp_path.iterdir()) == []

    def test_corrupt_artifact_is_a_miss(self, store, workload):
        key = artifact_key("trace", profile=workload.profile)
        path = store.path_for("trace", key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("not a trace\n")
        assert store.load_trace(key) is None

    def test_clear(self, store, workload):
        stats = simulate(workload.trace())
        store.store_stats("ab" * 32, stats)
        assert store.clear() == 1
        assert store.load_stats("ab" * 32) is None

    def test_clear_deletes_but_never_counts_orphan_tmp_files(
            self, store, workload):
        """An interrupted atomic write leaves a ``.tmp-*`` orphan next
        to the artifacts.  ``clear()`` must sweep it away, but the
        return value counts artifacts — the orphan was never one."""
        stats = simulate(workload.trace())
        store.store_stats("ab" * 32, stats)
        artifact = store.path_for("stats", "ab" * 32)
        orphan = artifact.parent / ".tmp-1234-abandoned"
        orphan.write_bytes(b"partial write")
        assert store.clear() == 1  # the stats artifact, not the orphan
        assert not orphan.exists()
        assert not artifact.exists()


class TestRunnerWiring:
    def test_warm_stats_identical_and_hit(self, isolated_cache):
        cold = app_context("Email", 60).stats("critic")
        assert cache_mod.get_cache().hits == 0
        clear_cache()
        cache_mod.reset_cache()
        warm = app_context("Email", 60).stats("critic")
        assert cache_mod.get_cache().hits >= 1
        assert dataclasses.asdict(warm) == dataclasses.asdict(cold)

    def test_changed_walk_blocks_misses(self, isolated_cache):
        app_context("Email", 60).stats("baseline")
        clear_cache()
        cache_mod.reset_cache()
        app_context("Email", 80).stats("baseline")
        cache = cache_mod.get_cache()
        assert cache.hits == 0
        assert cache.misses >= 1

    def test_changed_scheme_misses(self, isolated_cache):
        app_context("Email", 60).stats("critic")
        clear_cache()
        cache_mod.reset_cache()
        app_context("Email", 60).stats("hoist")
        cache = cache_mod.get_cache()
        assert cache.misses >= 2  # the hoist trace + stats are new
        assert cache.hits >= 1    # the critic-profile artifact is reused

    def test_run_apps_matches_stats_and_seeds_memo(self, isolated_cache):
        results = run_apps(["Email", "Maps"], ("baseline", "critic"),
                           walk_blocks=60)
        for name in ("Email", "Maps"):
            ctx = app_context(name, 60)
            for scheme in ("baseline", "critic"):
                cell = results[name][(scheme, GOOGLE_TABLET.name)]
                assert ctx._stats[(scheme, GOOGLE_TABLET.name)] is cell
                assert dataclasses.asdict(ctx.stats(scheme)) \
                    == dataclasses.asdict(cell)

    def test_run_apps_serial_fallback(self, isolated_cache):
        serial = run_apps(["Email"], ("baseline",), jobs=1, walk_blocks=60)
        assert serial["Email"][("baseline", GOOGLE_TABLET.name)].cycles > 0
