"""The repro.validate subsystem: invariants, reference model, fuzzing.

Also the regression tests for the two PR-3 simulator/runner bug fixes
that the validator exists to catch:

* ``prefetches_issued`` was last-writer-wins when CLPT and EFetch were
  both enabled (each prefetcher *assigned* the shared field);
* a run cut off by ``max_cycles`` was indistinguishable from a finished
  one (no ``truncated`` flag), and a genuinely wedged pipeline would
  spin toward ``1 << 62`` instead of raising.
"""

from dataclasses import replace

import pytest

from repro.cache import ArtifactCache
from repro.cpu import GOOGLE_TABLET, SimStats, simulate
from repro.cpu.config import (
    config_critical_prefetch,
    config_efetch,
)
from repro.cpu.pipeline import PipelineDeadlockError
from repro.isa import Cond, Instruction, Opcode
from repro.trace import BasicBlock, Program, Trace, materialize
from repro.validate import (
    InvariantViolationError,
    RunValidator,
    ValidationReport,
    validation_enabled,
)
from repro.validate.invariants import (
    check_commit,
    check_fetch_stalls,
    check_timestamps,
)


def alu(dest, *srcs, imm=None):
    return Instruction(Opcode.ADD, dests=(dest,), srcs=srcs, imm=imm)


def small_trace(k: int = 24) -> Trace:
    program = Program([BasicBlock(0, [alu(i % 6, 7, imm=1)
                                      for i in range(8)])])
    return materialize(program, [0] * (k // 8))


class TestValidatedEdgeTraces:
    """The invariant checker must accept every degenerate-but-legal run."""

    def test_empty_trace(self):
        validator = RunValidator()
        stats = simulate(Trace([]), validator=validator)
        assert stats.instructions == 0
        assert len(validator.reports) == 1
        assert validator.reports[0].ok

    def test_single_instruction(self):
        program = Program([BasicBlock(0, [alu(0, 1)])])
        validator = RunValidator()
        stats = simulate(materialize(program, [0]), validator=validator)
        assert stats.instructions == 1
        assert not validator.violations

    def test_all_branch_trace(self):
        program = Program([
            BasicBlock(0, [Instruction(Opcode.B, cond=Cond.NE, target=1)]),
            BasicBlock(1, [Instruction(Opcode.B, cond=Cond.NE, target=0)]),
        ])
        trace = materialize(program, [0, 1] * 8)
        validator = RunValidator()
        stats = simulate(trace, validator=validator)
        assert stats.instructions == len(trace)
        assert not validator.violations

    def test_truncated_run_passes_truncation_aware_checks(self):
        # A max_cycles cutoff is legal: commit completeness must not fire.
        validator = RunValidator()
        stats = simulate(small_trace(64), max_cycles=4,
                         validator=validator)
        assert stats.truncated
        assert stats.instructions < 64
        assert not validator.violations


class TestCorruptedRunsRejected:
    """Hand-corrupted fixtures must be rejected, not waved through."""

    def _columns(self, n=4):
        base = list(range(n))
        return tuple([t + k for t in base] for k in range(7))

    def test_corrupted_timestamp_rejected(self):
        columns = self._columns()
        columns[2][1] = columns[1][1] - 3  # decode before fetch at pos 1
        report = ValidationReport("corrupt", "test")
        check_timestamps(report, columns)
        assert not report.ok
        violation = report.violations[0]
        assert violation.kind == "timestamp_monotonicity"
        assert violation.pos == 1
        # Flight-recorder-style context covers the offending neighborhood.
        assert 1 in violation.context["timeline"]["positions"]

    def test_clean_timestamps_accepted(self):
        report = ValidationReport()
        check_timestamps(report, self._columns())
        assert report.ok

    def test_uncommitted_positions_skipped(self):
        columns = self._columns()
        columns[2][1] = -5
        columns[-1][1] = -1  # pos 1 never committed: exempt
        report = ValidationReport()
        check_timestamps(report, columns)
        assert report.ok

    def test_fetch_stall_leak_rejected(self):
        stats = simulate(small_trace())
        stats.fetch.active -= 1  # drop a cycle from the classification
        report = ValidationReport()
        check_fetch_stalls(report, stats)
        assert any(v.kind == "fetch_stall_conservation"
                   for v in report.violations)

    def test_commit_shortfall_rejected(self):
        stats = simulate(small_trace())
        report = ValidationReport()
        check_commit(report, stats, len(small_trace()) + 1)
        assert any(v.kind == "commit_completeness"
                   for v in report.violations)

    def test_strict_validator_raises(self):
        validator = RunValidator(strict=True)
        stats = simulate(small_trace(), validator=None)
        stats.instructions += 1  # corrupt: commits exceed residency
        with pytest.raises(InvariantViolationError) as exc:
            validator.on_run(
                trace_name="t", config_name="c", stats=stats, n=24,
                head=[], fetch=[], decode=[], dispatch=[], issue=[],
                complete=[], commit=[],
            )
        assert not exc.value.report.ok


class TestEnvGating:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_VALIDATE", raising=False)
        assert not validation_enabled()
        sim_stats = simulate(small_trace())
        assert sim_stats.instructions == 24

    @pytest.mark.parametrize("value", ["0", "false", "off", "no", ""])
    def test_off_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_VALIDATE", value)
        assert not validation_enabled()

    def test_env_enables_strict_checking(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        assert validation_enabled()
        # A clean run validates silently (strict would raise otherwise).
        stats = simulate(small_trace())
        assert stats.instructions == 24

    def test_stats_bit_identical_with_validation(self, monkeypatch):
        monkeypatch.delenv("REPRO_VALIDATE", raising=False)
        plain = simulate(small_trace(), validate=False)
        checked = simulate(small_trace(), validate=True)
        assert plain.to_dict() == checked.to_dict()

    def test_explicit_kwarg_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        from repro.cpu.pipeline import Simulator
        sim = Simulator(small_trace(), validate=False)
        assert sim.validator is None


class TestPrefetchCounterRegression:
    """CLPT and EFetch used to overwrite one shared counter."""

    def _dual_stats(self):
        from repro.experiments.runner import app_context
        ctx = app_context("Email", 120)
        trace = ctx.trace()
        config = replace(config_critical_prefetch(config_efetch()),
                         name="CLPT+EFetch")
        # CLPT only prefetches for *critical* loads: flag everything.
        return simulate(trace, config, validate=True,
                        critical_positions=set(range(len(trace))))

    def test_dual_prefetcher_counters_sum(self):
        stats = self._dual_stats()
        assert stats.clpt_prefetches_issued > 0
        assert stats.efetch_prefetches_issued > 0
        # The old code reported whichever prefetcher wrote last.
        assert stats.prefetches_issued == (stats.clpt_prefetches_issued
                                           + stats.efetch_prefetches_issued)

    def test_single_prefetcher_unchanged(self):
        from repro.experiments.runner import app_context
        ctx = app_context("Email", 120)
        stats = simulate(ctx.trace(), config_efetch(), validate=True)
        assert stats.clpt_prefetches_issued == 0
        assert stats.prefetches_issued == stats.efetch_prefetches_issued


class TestTruncationAndWatchdog:
    def test_truncated_flag_set_and_round_trips(self, tmp_path):
        stats = simulate(small_trace(64), max_cycles=4)
        assert stats.truncated
        assert SimStats.from_dict(stats.to_dict()).truncated
        cache = ArtifactCache(root=str(tmp_path), enabled=True)
        cache.store_stats("k" * 64, stats)
        loaded = cache.load_stats("k" * 64)
        assert loaded is not None and loaded.truncated
        assert loaded.to_dict() == stats.to_dict()

    def test_completed_run_not_truncated(self):
        stats = simulate(small_trace())
        assert not stats.truncated
        assert not SimStats.from_dict(stats.to_dict()).truncated

    def test_watchdog_raises_on_wedged_fetch(self):
        # 1 byte/cycle can never cover a >= 2-byte instruction: the fetch
        # stage is permanently stuck and nothing is in flight.
        config = replace(GOOGLE_TABLET, fetch_bytes_per_cycle=1)
        with pytest.raises(PipelineDeadlockError, match="no forward"):
            simulate(small_trace(), config)

    def test_max_cycles_beats_watchdog(self):
        # An explicit cutoff below the watchdog period truncates cleanly.
        config = replace(GOOGLE_TABLET, fetch_bytes_per_cycle=1)
        stats = simulate(small_trace(), config, max_cycles=64)
        assert stats.truncated
        assert stats.instructions == 0


class TestReferenceModel:
    def test_differential_on_catalog_app(self):
        from repro.experiments.runner import app_context
        from repro.validate.differential import differential_check
        ctx = app_context("Email", 120)
        report = differential_check(ctx.trace())
        assert report.ok, report.summary()

    def test_reference_is_upper_bound(self):
        from repro.experiments.runner import app_context
        from repro.validate.reference import reference_run
        ctx = app_context("Email", 120)
        ref = reference_run(ctx.trace())
        ooo = simulate(ctx.trace())
        assert ooo.cycles <= ref.cycles
        assert ref.instructions == len(ctx.trace())
        assert ref.fetched_bytes == ctx.trace().dynamic_bytes()

    def test_differential_catches_mispredict_drift(self):
        from repro.experiments.runner import app_context
        from repro.validate.differential import differential_check
        ctx = app_context("Email", 120)
        bad = simulate(ctx.trace())
        bad.branch_mispredicts += 1
        report = differential_check(ctx.trace(), ooo_stats=bad)
        assert any(v.kind == "diff_branch_mispredicts"
                   for v in report.violations)


class TestFuzzSmoke:
    def test_one_fuzz_round_clean(self):
        from repro.validate.fuzz import run_fuzz
        result = run_fuzz(1, seed=11, walk_blocks=60)
        assert result.iterations == 1
        assert result.simulations > 10
        assert result.properties_checked >= 10
        assert result.ok, [r.summary() for r in result.failures]

    def test_fuzz_is_deterministic(self):
        from repro.validate.fuzz import random_profile
        import random
        first = random_profile(random.Random(5), 0)
        second = random_profile(random.Random(5), 0)
        assert first == second

    def test_family_metamorphic_round_clean(self):
        import random
        from repro.validate.fuzz import FuzzResult, family_metamorphic
        result = FuzzResult()
        report = family_metamorphic(random.Random(7), result,
                                    walk_blocks=60)
        assert report.ok, report.summary()
        # six generator families x five properties each
        assert result.properties_checked >= 30
        assert result.simulations >= 24
        assert all(r.ok for r in result.reports), \
            [r.summary() for r in result.reports if not r.ok]


class TestEnvParsing:
    """Malformed env knobs degrade to defaults with a warning."""

    def test_malformed_jobs_warns_and_defaults(self, monkeypatch):
        from repro.experiments.runner import default_jobs
        import os
        monkeypatch.setenv("REPRO_JOBS", "auto")
        with pytest.warns(RuntimeWarning, match="REPRO_JOBS"):
            jobs = default_jobs()
        assert jobs == (os.cpu_count() or 1)

    def test_valid_jobs_still_parsed(self, monkeypatch):
        from repro.experiments.runner import default_jobs
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3

    def test_jobs_clamped_to_one(self, monkeypatch):
        from repro.experiments.runner import default_jobs
        monkeypatch.setenv("REPRO_JOBS", "-4")
        assert default_jobs() == 1

    def test_malformed_walk_blocks_warns_and_defaults(self, monkeypatch):
        from repro.experiments.runner import _env_int
        monkeypatch.setenv("REPRO_WALK_BLOCKS", "many")
        with pytest.warns(RuntimeWarning, match="REPRO_WALK_BLOCKS"):
            assert _env_int("REPRO_WALK_BLOCKS", 700) == 700

    def test_unset_env_silent_default(self, monkeypatch):
        from repro.experiments.runner import _env_int
        monkeypatch.delenv("REPRO_WALK_BLOCKS", raising=False)
        assert _env_int("REPRO_WALK_BLOCKS", 700) == 700
