"""Tests for the SoC energy model."""

import pytest

from repro.cpu import SimStats
from repro.energy import (
    CDP_LOGIC_AREA_UM2,
    EnergyParams,
    energy_of,
    savings,
)


def stats(cycles=1000, instructions=2000, icache=500, dcache=400,
          l2=50, dram=5, cdp=0):
    s = SimStats(cycles=cycles, instructions=instructions)
    s.icache_accesses = icache
    s.dcache_accesses = dcache
    s.l2_accesses = l2
    s.dram_reads = dram
    s.cdp_decoded = cdp
    return s


class TestBreakdown:
    def test_components_positive(self):
        e = energy_of(stats())
        assert e.cpu_total > 0
        assert e.memory_total > 0
        assert e.soc_total > e.cpu_total + e.memory_total - 1

    def test_soc_rest_dominates(self):
        """Calibration: the non-CPU SoC is the majority of energy
        (mobile reality; makes the paper's 15% CPU vs 4.6% SoC coherent)."""
        e = energy_of(stats())
        assert e.soc_rest > 0.5 * e.soc_total

    def test_cdp_not_counted_as_work(self):
        base = energy_of(stats())
        with_cdp = energy_of(stats(instructions=2010, cdp=10))
        assert with_cdp.soc_rest == base.soc_rest

    def test_as_dict_complete(self):
        e = energy_of(stats())
        d = e.as_dict()
        assert set(d) == {
            "cpu_dynamic", "cpu_static", "icache", "dcache", "l2",
            "dram", "mem_static", "soc_rest",
        }


class TestSavings:
    def test_faster_run_saves_energy(self):
        base = energy_of(stats(cycles=1000))
        fast = energy_of(stats(cycles=880, icache=420))
        result = savings(base, fast)
        assert result.total_pct_of_soc > 0
        assert result.cpu_pct_of_soc > 0
        assert result.icache_pct_of_soc > 0
        assert result.cpu_only_pct > result.total_pct_of_soc

    def test_identical_runs_save_nothing(self):
        base = energy_of(stats())
        result = savings(base, energy_of(stats()))
        assert result.total_pct_of_soc == pytest.approx(0.0)

    def test_paper_shape_cpu_vs_soc(self):
        """A ~12% cycle reduction yields a much larger CPU-% saving than
        SoC-% saving (paper: 15% vs 4.6%)."""
        base = energy_of(stats(cycles=1000, icache=500))
        opt = energy_of(stats(cycles=880, icache=450))
        result = savings(base, opt)
        assert result.cpu_only_pct > 2 * result.total_pct_of_soc

    def test_constants_recorded(self):
        assert CDP_LOGIC_AREA_UM2 == 80.0


class TestParams:
    def test_custom_params_flow_through(self):
        params = EnergyParams(pj_dram_access=0.0)
        a = energy_of(stats(dram=100), params)
        b = energy_of(stats(dram=0), params)
        assert a.dram == b.dram == 0.0
