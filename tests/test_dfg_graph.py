"""Unit + property tests for the dynamic DFG container."""

from hypothesis import given, settings, strategies as st

from repro.dfg import Dfg
from repro.isa import Instruction, Opcode
from repro.trace import Trace, TraceEntry


def alu(dest, *srcs):
    return Instruction(Opcode.ADD, dests=(dest,), srcs=srcs)


def trace_of(instrs):
    return Trace([
        TraceEntry(seq=i, instr=ins.with_uid(i), pc=0x1000 + 4 * i)
        for i, ins in enumerate(instrs)
    ])


class TestDfg:
    def test_consumers_match_producers(self):
        dfg = Dfg(trace_of([alu(0, 6), alu(1, 0), alu(2, 0, 1)]))
        assert dfg.consumers[0] == [1, 2]
        assert dfg.producers[2] == (0, 1)
        assert dfg.fanouts == [2, 1, 0]

    def test_sole_producer_children(self):
        dfg = Dfg(trace_of([alu(0, 6), alu(1, 0), alu(2, 0, 1)]))
        # position 1 reads only position 0 -> kept edge;
        # position 2 reads both -> not a sole-producer child.
        assert dfg.sole_producer_children(0) == [1]

    def test_chain_roots(self):
        dfg = Dfg(trace_of([alu(0, 6), alu(1, 0), alu(2, 1)]))
        assert dfg.chain_roots() == [0]

    def test_entry_accessor(self):
        trace = trace_of([alu(0, 6)])
        dfg = Dfg(trace)
        assert dfg.entry(0) is trace.entries[0]
        assert len(dfg) == 1


@st.composite
def random_traces(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    instrs = []
    for _ in range(n):
        dest = draw(st.integers(min_value=0, max_value=7))
        nsrc = draw(st.integers(min_value=0, max_value=2))
        srcs = tuple(
            draw(st.integers(min_value=0, max_value=7)) for _ in range(nsrc)
        )
        instrs.append(alu(dest, *srcs))
    return trace_of(instrs)


@given(random_traces())
@settings(max_examples=40)
def test_property_edges_point_backwards(trace):
    """Producers always precede consumers in the dynamic order, and
    fanout equals the out-degree of the consumer inversion."""
    dfg = Dfg(trace)
    for pos, producers in enumerate(dfg.producers):
        for producer in producers:
            assert producer < pos
            assert pos in dfg.consumers[producer]
    assert dfg.fanouts == [len(c) for c in dfg.consumers]


@given(random_traces())
@settings(max_examples=40)
def test_property_kept_edges_form_forest(trace):
    """Every node has at most one kept (sole-producer) incoming edge, so
    kept edges form a forest — the precondition for IC enumeration."""
    dfg = Dfg(trace)
    kept_parents = {}
    for parent in range(len(dfg)):
        for child in dfg.sole_producer_children(parent):
            assert child not in kept_parents
            kept_parents[child] = parent
    # Roots are exactly the nodes without a kept incoming edge.
    for root in dfg.chain_roots():
        assert root not in kept_parents
