"""Tests for the consolidated report generator."""

import io

import pytest

from repro.experiments.report import SECTIONS, generate_report, main


class TestSections:
    def test_registry_covers_all_figures(self):
        assert set(SECTIONS) == {
            "table1", "table2", "fig01", "fig03", "fig05", "fig08",
            "fig10", "fig11", "fig12", "fig13",
        }

    def test_tables_only(self):
        text = generate_report(sections=["table1", "table2"])
        assert "baseline configuration" in text
        assert "evaluated workloads" in text

    def test_unknown_section_rejected(self):
        with pytest.raises(KeyError, match="unknown sections"):
            generate_report(sections=["fig99"])

    def test_streaming(self):
        stream = io.StringIO()
        generate_report(sections=["table1"], stream=stream)
        assert "baseline configuration" in stream.getvalue()

    def test_small_figure_section(self):
        text = generate_report(sections=["fig08"], walk=100, apps=1,
                               per_group=1)
        assert "branch switching" in text


class TestCli:
    def test_main_writes_out_file(self, tmp_path, capsys):
        out = tmp_path / "report.txt"
        code = main(["table2", "--out", str(out)])
        assert code == 0
        assert "Acrobat" in out.read_text()
        assert "Acrobat" in capsys.readouterr().out
