"""Cross-process telemetry: worker snapshots must reach the parent.

Regression tests for the PR-1 parallel runner silently dropping
``repro.perf`` phases/counters recorded inside ``ProcessPoolExecutor``
workers: fleet totals (e.g. ``simulate`` call counts) must match the
serial run's, and even a *crashing* worker's telemetry must be recovered
through the temp-file spool channel.
"""

import pytest

from repro import telemetry
from repro.cache import reset_cache
from repro.experiments.runner import clear_cache, run_apps
from repro.registry import SCHEME_RECIPES
from repro.telemetry.manifest import load_manifest, manifest_dir

APPS = ("Music", "Email")
WALK = 120


def _exploding_recipe(ctx, max_length, profiled_fraction):
    """Touch the workload (a real `generate` phase) and then blow up —
    module-level so forked pool workers can unpickle the AppContext that
    references it."""
    ctx.workload
    raise ValueError("scheme recipe exploded (test crash injection)")


@pytest.fixture(autouse=True)
def _fresh_state(tmp_path, monkeypatch):
    """Fresh telemetry, in-process memo, and disk cache per test, so
    every scheme genuinely runs (and runs in the workers)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    reset_cache()
    clear_cache()
    telemetry.reset()
    yield
    telemetry.reset()
    clear_cache()
    reset_cache()


def _simulate_calls() -> int:
    return telemetry.phase_stats().get("simulate", {}).get("calls", 0)


class TestWorkerMerge:
    def test_parallel_matches_serial_phase_counts(self, tmp_path,
                                                  monkeypatch):
        """REPRO_JOBS=2: phases executed inside workers appear in the
        parent with the same call counts as a serial run."""
        run_apps(APPS, ("baseline",), jobs=1, walk_blocks=WALK)
        serial_calls = _simulate_calls()
        assert serial_calls == len(APPS)
        serial_counters = telemetry.counters()

        # Fresh everything, then the same grid through the pool.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache2"))
        reset_cache()
        clear_cache()
        telemetry.reset()
        results = run_apps(APPS, ("baseline",), jobs=2, walk_blocks=WALK)
        assert all(results[name] for name in APPS)

        phases = telemetry.phase_stats()
        if "run_apps.parallel" not in phases:
            pytest.skip("process pool unavailable; serial fallback ran")
        assert _simulate_calls() == serial_calls
        merged = telemetry.counters()
        for name, value in serial_counters.items():
            if name.startswith("cache.miss."):
                assert merged.get(name, 0) >= value

    def test_worker_phase_time_is_nonzero(self):
        run_apps(APPS, ("baseline",), jobs=2, walk_blocks=WALK)
        stats = telemetry.phase_stats()
        assert stats.get("simulate", {}).get("total_s", 0.0) > 0.0
        assert stats.get("generate", {}).get("calls", 0) >= len(APPS)

    def test_crashed_worker_totals_match_serial(self, tmp_path,
                                                monkeypatch):
        """A scheme recipe that raises *after* real work (generate) makes
        every worker crash mid-cell.  Crashed cells are retried serially,
        so their spooled snapshots must be *discarded* — merging them on
        top of the retry's telemetry double-counted the cell's work (the
        PR-3 regression).  Totals must match a plain serial run."""
        from concurrent.futures import ProcessPoolExecutor
        try:
            with ProcessPoolExecutor(max_workers=2) as pool:
                assert pool.submit(int, "7").result() == 7
        except Exception:
            pytest.skip("process pool unavailable on this machine")

        with SCHEME_RECIPES.scoped("explode-after-work", _exploding_recipe):
            with pytest.raises(ValueError, match="recipe exploded"):
                run_apps(APPS, ("explode-after-work",), jobs=1,
                         walk_blocks=WALK)
            serial_calls = \
                telemetry.phase_stats().get("generate", {}).get("calls", 0)
            assert serial_calls >= 1

            monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache2"))
            reset_cache()
            clear_cache()
            telemetry.reset()
            with pytest.raises(ValueError, match="recipe exploded"):
                run_apps(APPS, ("explode-after-work",), jobs=2,
                         walk_blocks=WALK)
            parallel_calls = \
                telemetry.phase_stats().get("generate", {}).get("calls", 0)
            assert parallel_calls == serial_calls

    def test_unknown_scheme_fails_fast_with_suggestion(self):
        """A typo'd scheme now fails in the probe, before any generation,
        and the error names the nearest registered recipe."""
        with pytest.raises(ValueError, match="critic"):
            run_apps(APPS, ("crtic",), jobs=1, walk_blocks=WALK)
        assert telemetry.phase_stats().get("generate", {}) \
            .get("calls", 0) == 0


class TestRunManifest:
    def test_run_apps_writes_manifest(self):
        run_apps(APPS, ("baseline",), jobs=1, walk_blocks=WALK)
        manifest = load_manifest(str(manifest_dir() / "last_run.json"))
        assert manifest["kind"] == "run_apps"
        assert manifest["apps"] == sorted(APPS)
        assert manifest["walk_blocks"] == WALK
        assert set(manifest["seeds"]) == set(APPS)
        assert manifest["wall_s"] > 0
        assert manifest["phases"].get("simulate", {}).get("calls") \
            == len(APPS)
        assert manifest["cache"]["misses"] > 0

    def test_warm_run_manifest_shows_cache_hits(self):
        run_apps(APPS, ("baseline",), jobs=1, walk_blocks=WALK)
        clear_cache()  # drop the in-process memo, keep the disk cache
        run_apps(APPS, ("baseline",), jobs=1, walk_blocks=WALK)
        manifest = load_manifest(str(manifest_dir() / "last_run.json"))
        assert manifest["cache"]["hits"] >= len(APPS)
        log = (manifest_dir() / "manifests.jsonl").read_text()
        assert len(log.strip().splitlines()) == 2
