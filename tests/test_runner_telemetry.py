"""Cross-process telemetry: worker snapshots must reach the parent.

Regression tests for the PR-1 parallel runner silently dropping
telemetry phases/counters recorded inside ``ProcessPoolExecutor``
workers: fleet totals (e.g. ``simulate`` call counts) must match the
serial run's, and even a *crashing* worker's telemetry must be recovered
through the temp-file spool channel.  With execution now behind the
``EXECUTORS`` registry, the same exactly-once discipline is asserted for
every backend — including a fleet whose workers are being killed by the
fault injector mid-sweep.
"""

import time

import pytest

from repro import telemetry
from repro.cache import reset_cache
from repro.dispatch import CellTimeoutError
from repro.experiments.runner import (
    clear_cache,
    last_dispatch_report,
    run_apps,
)
from repro.registry import SCHEME_RECIPES
from repro.telemetry.manifest import load_manifest, manifest_dir

APPS = ("Music", "Email")
WALK = 120


def _exploding_recipe(ctx, max_length, profiled_fraction):
    """Touch the workload (a real `generate` phase) and then blow up —
    module-level so forked pool workers can unpickle the AppContext that
    references it."""
    ctx.workload
    raise ValueError("scheme recipe exploded (test crash injection)")


def _sleeping_recipe(ctx, max_length, profiled_fraction):
    """Hangs the cell long enough for the wall-clock deadline to fire."""
    ctx.workload
    time.sleep(30.0)
    return []


@pytest.fixture(autouse=True)
def _fresh_state(tmp_path, monkeypatch):
    """Fresh telemetry, in-process memo, and disk cache per test, so
    every scheme genuinely runs (and runs in the workers)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    reset_cache()
    clear_cache()
    telemetry.reset()
    yield
    telemetry.reset()
    clear_cache()
    reset_cache()


def _simulate_calls() -> int:
    return telemetry.phase_stats().get("simulate", {}).get("calls", 0)


class TestWorkerMerge:
    def test_parallel_matches_serial_phase_counts(self, tmp_path,
                                                  monkeypatch):
        """REPRO_JOBS=2: phases executed inside workers appear in the
        parent with the same call counts as a serial run."""
        run_apps(APPS, ("baseline",), jobs=1, walk_blocks=WALK)
        serial_calls = _simulate_calls()
        assert serial_calls == len(APPS)
        serial_counters = telemetry.counters()

        # Fresh everything, then the same grid through the pool.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache2"))
        reset_cache()
        clear_cache()
        telemetry.reset()
        results = run_apps(APPS, ("baseline",), jobs=2, walk_blocks=WALK)
        assert all(results[name] for name in APPS)

        phases = telemetry.phase_stats()
        if "run_apps.parallel" not in phases:
            pytest.skip("process pool unavailable; serial fallback ran")
        assert _simulate_calls() == serial_calls
        merged = telemetry.counters()
        for name, value in serial_counters.items():
            if name.startswith("cache.miss."):
                assert merged.get(name, 0) >= value

    def test_worker_phase_time_is_nonzero(self):
        run_apps(APPS, ("baseline",), jobs=2, walk_blocks=WALK)
        stats = telemetry.phase_stats()
        assert stats.get("simulate", {}).get("total_s", 0.0) > 0.0
        assert stats.get("generate", {}).get("calls", 0) >= len(APPS)

    def test_crashed_worker_totals_match_serial(self, tmp_path,
                                                monkeypatch):
        """A scheme recipe that raises *after* real work (generate) makes
        every worker crash mid-cell.  Crashed cells are retried serially,
        so their spooled snapshots must be *discarded* — merging them on
        top of the retry's telemetry double-counted the cell's work (the
        PR-3 regression).  Totals must match a plain serial run."""
        from concurrent.futures import ProcessPoolExecutor
        try:
            with ProcessPoolExecutor(max_workers=2) as pool:
                assert pool.submit(int, "7").result() == 7
        except Exception:
            pytest.skip("process pool unavailable on this machine")

        with SCHEME_RECIPES.scoped("explode-after-work", _exploding_recipe):
            with pytest.raises(ValueError, match="recipe exploded"):
                run_apps(APPS, ("explode-after-work",), jobs=1,
                         walk_blocks=WALK)
            serial_calls = \
                telemetry.phase_stats().get("generate", {}).get("calls", 0)
            assert serial_calls >= 1

            monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache2"))
            reset_cache()
            clear_cache()
            telemetry.reset()
            with pytest.raises(ValueError, match="recipe exploded"):
                run_apps(APPS, ("explode-after-work",), jobs=2,
                         walk_blocks=WALK)
            parallel_calls = \
                telemetry.phase_stats().get("generate", {}).get("calls", 0)
            assert parallel_calls == serial_calls

    def test_unknown_scheme_fails_fast_with_suggestion(self):
        """A typo'd scheme now fails in the probe, before any generation,
        and the error names the nearest registered recipe."""
        with pytest.raises(ValueError, match="critic"):
            run_apps(APPS, ("crtic",), jobs=1, walk_blocks=WALK)
        assert telemetry.phase_stats().get("generate", {}) \
            .get("calls", 0) == 0


class TestPerExecutorTelemetry:
    """Exactly-once telemetry for every registered execution backend."""

    def _serial_reference(self, tmp_path, monkeypatch, schemes,
                          raises=None):
        """Phase totals from a plain jobs=1 run, then fresh state."""
        if raises is None:
            run_apps(APPS, schemes, jobs=1, walk_blocks=WALK)
        else:
            with pytest.raises(ValueError, match=raises):
                run_apps(APPS, schemes, jobs=1, walk_blocks=WALK)
        reference = telemetry.phase_stats()
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache2"))
        reset_cache()
        clear_cache()
        telemetry.reset()
        return reference

    @pytest.mark.parametrize("executor", ["pool", "fleet"])
    def test_simulate_counts_match_serial(self, tmp_path, monkeypatch,
                                          executor):
        serial = self._serial_reference(tmp_path, monkeypatch,
                                        ("baseline",))
        results = run_apps(APPS, ("baseline",), jobs=2, walk_blocks=WALK,
                           executor=executor)
        assert all(results[name] for name in APPS)
        report = last_dispatch_report()
        assert report is not None
        assert report.executor == f"{executor}@1"
        phases = telemetry.phase_stats()
        if executor == "pool" and "run_apps.parallel" not in phases:
            pytest.skip("process pool unavailable; degraded path ran")
        for phase in ("simulate", "generate"):
            assert phases.get(phase, {}).get("calls", 0) \
                == serial.get(phase, {}).get("calls", 0), phase

    def test_fleet_retried_cell_counted_exactly_once(self, tmp_path,
                                                     monkeypatch):
        """Fault injection forces retries; a retried cell's spans must
        land in the parent exactly once — the successful attempt's.

        Kill-only faults with the disk cache off keep the accounting
        exact: each SIGKILLed attempt takes its whole process (and its
        memo and telemetry) with it, so the successful retry in a fresh
        worker recomputes — and reports — the full cell.  (With ``drop``
        faults or a shared cache, a retry may legitimately *undercount*
        by reusing the doomed attempt's work; the double-count direction
        is what this test guards.)  Seed 7 kills both cells' first two
        attempts and lets the third through."""
        monkeypatch.setenv("REPRO_CACHE", "0")
        reset_cache()
        serial = self._serial_reference(tmp_path, monkeypatch,
                                        ("baseline",))
        monkeypatch.setenv("REPRO_DISPATCH_FAULTS", "kill:0.6;seed=7")
        monkeypatch.setenv("REPRO_DISPATCH_BACKOFF", "0.01")
        results = run_apps(APPS, ("baseline",), jobs=2, walk_blocks=WALK,
                           executor="fleet")
        assert all(results[name] for name in APPS)
        report = last_dispatch_report()
        assert report.to_dict()["retries"] >= 1, \
            "fault plan injected nothing; pick a hotter seed"
        assert report.faults == "kill:0.6;seed=7"
        phases = telemetry.phase_stats()
        for phase in ("simulate", "generate"):
            assert phases.get(phase, {}).get("calls", 0) \
                == serial.get(phase, {}).get("calls", 0), phase

    @pytest.mark.parametrize("executor", ["pool", "fleet"])
    def test_crashed_worker_totals_match_serial(self, tmp_path,
                                                monkeypatch, executor):
        """The exploding-recipe regression, per backend: every remote
        attempt crashes, the cell quarantines to the parent, and the
        parent's totals still match a plain serial run's."""
        monkeypatch.setenv("REPRO_DISPATCH_BACKOFF", "0.01")
        with SCHEME_RECIPES.scoped("explode-after-work",
                                   _exploding_recipe):
            serial = self._serial_reference(
                tmp_path, monkeypatch, ("explode-after-work",),
                raises="recipe exploded")
            with pytest.raises(ValueError, match="recipe exploded"):
                run_apps(APPS, ("explode-after-work",), jobs=2,
                         walk_blocks=WALK, executor=executor)
            report = last_dispatch_report()
            assert report.to_dict()["quarantined"], \
                "poison cells should have been quarantined"
            assert telemetry.phase_stats() \
                .get("generate", {}).get("calls", 0) \
                == serial.get("generate", {}).get("calls", 0)


class TestMetricsExactlyOnce:
    """The typed metrics registry must obey the same exactly-once
    discipline as phase stats: a fleet sweep under fault injection ends
    with counters bit-equal to an inline run's, because only the
    successful attempt's snapshot is merged."""

    def _counters(self):
        from repro.telemetry import metrics

        flat = metrics.REGISTRY.counters_flat("repro_cells_total")
        flat.update(
            metrics.REGISTRY.counters_flat("repro_sim_instructions_total"))
        return flat

    def _inline_reference(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        reset_cache()
        run_apps(APPS, ("baseline",), jobs=1, walk_blocks=WALK)
        reference = self._counters()
        assert reference.get("repro_cells_total{status=done}") == len(APPS)
        assert reference.get("repro_sim_instructions_total{}", 0) > 0
        clear_cache()
        telemetry.reset()
        return reference

    @pytest.mark.parametrize("faults", ["kill:0.6;seed=7",
                                        "corrupt:0.9;seed=3"])
    def test_fleet_faulted_counters_bit_equal_inline(self, monkeypatch,
                                                     faults):
        """Killed attempts die with their registry; corrupted payloads
        are discarded snapshot and all.  Either way the retry's snapshot
        is the only one merged, so cell and instruction totals match the
        inline run exactly — not approximately."""
        inline = self._inline_reference(monkeypatch)
        monkeypatch.setenv("REPRO_DISPATCH_FAULTS", faults)
        monkeypatch.setenv("REPRO_DISPATCH_BACKOFF", "0.01")
        results = run_apps(APPS, ("baseline",), jobs=2, walk_blocks=WALK,
                           executor="fleet")
        assert all(results[name] for name in APPS)
        assert last_dispatch_report().to_dict()["retries"] >= 1, \
            "fault plan injected nothing; pick a hotter seed"
        assert self._counters() == inline

    def test_events_narrate_attempts_metrics_stay_exact(self, tmp_path,
                                                        monkeypatch):
        """Events and metrics deliberately disagree under retries: the
        event log keeps every attempt (including the doomed ones), while
        the metrics registry counts each cell once."""
        from repro.telemetry import events

        inline = self._inline_reference(monkeypatch)
        log = tmp_path / "events.jsonl"
        monkeypatch.setenv(events.ENV_EVENTS, str(log))
        events.set_path(None)  # re-read the env
        monkeypatch.setenv("REPRO_DISPATCH_FAULTS", "kill:0.6;seed=7")
        monkeypatch.setenv("REPRO_DISPATCH_BACKOFF", "0.01")
        try:
            run_apps(APPS, ("baseline",), jobs=2, walk_blocks=WALK,
                     executor="fleet")
        finally:
            events.set_path("")
        attempts = [r for r in events.iter_events(str(log))
                    if r["kind"] == "dispatch.attempt"]
        outcomes = {r["outcome"] for r in attempts}
        assert "worker-died" in outcomes and "ok" in outcomes
        assert len([r for r in attempts if r["outcome"] == "ok"]) \
            == len(APPS)
        assert len(attempts) > len(APPS)  # doomed attempts stay logged
        assert self._counters() == inline


class TestCellDeadline:
    def test_wedged_cell_raises_structured_timeout(self, monkeypatch):
        """A cell that stops making wall-clock progress fails loudly
        with the cell id in the error instead of hanging the run."""
        monkeypatch.setenv("REPRO_DISPATCH_TIMEOUT", "0.5")
        with SCHEME_RECIPES.scoped("sleep-forever", _sleeping_recipe):
            with pytest.raises(CellTimeoutError,
                               match="Music.google-tablet") as excinfo:
                run_apps(("Music",), ("sleep-forever",), jobs=1,
                         walk_blocks=WALK)
        assert excinfo.value.task_id == "Music|google-tablet"
        report = last_dispatch_report()
        assert report.to_dict()["timeouts"] >= 1


class TestRunManifest:
    def test_run_apps_writes_manifest(self):
        run_apps(APPS, ("baseline",), jobs=1, walk_blocks=WALK)
        manifest = load_manifest(str(manifest_dir() / "last_run.json"))
        assert manifest["kind"] == "run_apps"
        assert manifest["apps"] == sorted(APPS)
        assert manifest["walk_blocks"] == WALK
        assert set(manifest["seeds"]) == set(APPS)
        assert manifest["wall_s"] > 0
        assert manifest["phases"].get("simulate", {}).get("calls") \
            == len(APPS)
        assert manifest["cache"]["misses"] > 0

    def test_warm_run_manifest_shows_cache_hits(self):
        run_apps(APPS, ("baseline",), jobs=1, walk_blocks=WALK)
        clear_cache()  # drop the in-process memo, keep the disk cache
        run_apps(APPS, ("baseline",), jobs=1, walk_blocks=WALK)
        manifest = load_manifest(str(manifest_dir() / "last_run.json"))
        assert manifest["cache"]["hits"] >= len(APPS)
        log = (manifest_dir() / "manifests.jsonl").read_text()
        assert len(log.strip().splitlines()) == 2
