"""Golden SimStats: the registry refactor must be bit-identical.

Every scheme x Fig-11 hardware-config cell for one small app is pinned in
``tests/data/golden_stats.json``.  The snapshot was generated *before* the
component-registry refactor (PR 4), so these tests prove that moving the
schemes, hardware variants, branch predictor, i-cache replacement policy,
and prefetchers onto ``repro.registry`` changed no simulated number —
``SimStats.to_dict()`` must match the pinned cell exactly, key for key.

The scheme and config name lists are pinned *here*, not imported from the
registries, so a refactor that silently drops a variant fails loudly
instead of shrinking the grid.

Regenerate (only for an intentional, CHANGES.md-documented semantic
change)::

    PYTHONPATH=src python tests/test_golden_stats.py --regen
"""

import json
from pathlib import Path

import pytest

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_stats.json"

#: One small mobile app at a small scale keeps the 56-cell grid fast.
APP = "Music"
WALK_BLOCKS = 140

#: Pinned pre-refactor grid: all eight schemes...
GOLDEN_SCHEMES = (
    "baseline", "hoist", "critic", "critic_ideal", "branch",
    "opp16", "compress", "opp16_critic",
)
#: ... times Table I baseline + the six Fig-11 hardware variants.
GOLDEN_CONFIGS = (
    "google-tablet", "2xFD", "4xI$", "EFetch", "PerfectBr",
    "BackendPrio", "AllHW",
)


def _config_by_name(name: str):
    from repro.cpu.config import GOOGLE_TABLET, HARDWARE_VARIANTS
    if name == "google-tablet":
        return GOOGLE_TABLET
    return HARDWARE_VARIANTS[name]()


def compute_cells():
    """Simulate the whole pinned grid; returns {scheme|config: to_dict}."""
    from repro.experiments.runner import app_context

    ctx = app_context(APP, WALK_BLOCKS)
    cells = {}
    for scheme in GOLDEN_SCHEMES:
        for config_name in GOLDEN_CONFIGS:
            stats = ctx.stats(scheme, _config_by_name(config_name))
            cells[f"{scheme}|{config_name}"] = stats.to_dict()
    return cells


@pytest.fixture(scope="module")
def golden():
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} missing; regenerate with "
        "PYTHONPATH=src python tests/test_golden_stats.py --regen"
    )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def computed():
    return compute_cells()


def test_golden_grid_is_complete(golden):
    expected = {
        f"{scheme}|{config}"
        for scheme in GOLDEN_SCHEMES for config in GOLDEN_CONFIGS
    }
    assert set(golden["cells"]) == expected


def test_golden_metadata(golden):
    assert golden["app"] == APP
    assert golden["walk_blocks"] == WALK_BLOCKS


@pytest.mark.parametrize("scheme", GOLDEN_SCHEMES)
def test_scheme_cells_bit_identical(scheme, golden, computed):
    for config_name in GOLDEN_CONFIGS:
        key = f"{scheme}|{config_name}"
        assert computed[key] == golden["cells"][key], (
            f"SimStats drift in cell {key}: the refactor is not "
            f"bit-identical (regen only for documented semantic changes)"
        )


def _regen():
    import conftest  # noqa: F401  (throwaway cache dir)
    cells = compute_cells()
    payload = {
        "app": APP,
        "walk_blocks": WALK_BLOCKS,
        "cells": cells,
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n"
    )
    print(f"wrote {len(cells)} cells to {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        sys.path.insert(0, str(Path(__file__).parent))
        _regen()
    else:
        print(__doc__)
