"""Ad-hoc parity harness: batch vs inline over the 56-cell golden grid.

Not part of the test suite (tests/test_batch_engine.py covers this); kept
as a standalone driver for kernel debugging:

    PYTHONPATH=src python scripts/_parity_check.py            # C kernel
    REPRO_BATCH_CKERNEL=0 PYTHONPATH=src python scripts/_parity_check.py
"""

import os
import sys
import tempfile

os.environ["REPRO_CACHE_DIR"] = tempfile.mkdtemp(prefix="repro-parity-")

from repro.cpu.batch import last_batch_report, simulate_batch
from repro.cpu.pipeline import simulate
from repro.experiments.runner import app_context

APP = "Music"
WALK_BLOCKS = 140
SCHEMES = ("baseline", "hoist", "critic", "critic_ideal", "branch",
           "opp16", "compress", "opp16_critic")
CONFIGS = ("google-tablet", "2xFD", "4xI$", "EFetch", "PerfectBr",
           "BackendPrio", "AllHW")


def config_by_name(name):
    from repro.cpu.config import GOOGLE_TABLET, HARDWARE_VARIANTS
    if name == "google-tablet":
        return GOOGLE_TABLET
    return HARDWARE_VARIANTS[name]()


def main():
    ctx = app_context(APP, WALK_BLOCKS)
    configs = [config_by_name(name) for name in CONFIGS]
    bad = 0
    for scheme in SCHEMES:
        trace = ctx.scheme_trace(scheme)
        batch = simulate_batch(trace, configs)
        report = last_batch_report()
        for config, bstats in zip(configs, batch):
            istats = simulate(trace, config)
            b, i = bstats.to_dict(), istats.to_dict()
            if b != i:
                bad += 1
                print(f"MISMATCH {scheme}|{config.name}")
                for key in sorted(set(b) | set(i)):
                    if b.get(key) != i.get(key):
                        print(f"  {key}: batch={b.get(key)!r} "
                              f"inline={i.get(key)!r}")
        print(f"{scheme}: kernel={report['kernel']} "
              f"fast={report['fast']}/{report['width']} "
              f"rounds={report['rounds']} "
              f"fallbacks={report['fallbacks']}")
    if bad:
        print(f"FAILED: {bad} mismatching cells")
        sys.exit(1)
    print("OK: all 56 cells bit-identical")


if __name__ == "__main__":
    main()
