"""Measure the batch engine's aggregate throughput for BENCH_perf.json.

Methodology (1-core container, matching the existing single-cell
numbers): one fig11-style batch — the Music baseline trace under the
Table I baseline, the six Fig-11 hardware variants, and the
replacement-policy study config (8 cells, one trace) — timed warm
(tables/profiles memoized, C kernel compiled) as the best of N repeats.
The single-cell warm comparison runs the same trace inline under the
baseline config.  The acceptance floor is >= 5x over the pinned 238,363
warm instr/s single-cell number (Angrybirds@400, BENCH_perf.json).

Usage: PYTHONPATH=src python scripts/bench_batch.py
"""

import json
import os
import sys
import tempfile
import time

os.environ.setdefault("REPRO_CACHE_DIR",
                      tempfile.mkdtemp(prefix="repro-bench-batch-"))

from repro.cpu.batch import last_batch_report, simulate_batch  # noqa: E402
from repro.cpu.config import (  # noqa: E402
    GOOGLE_TABLET,
    HARDWARE_VARIANTS,
    config_trrip_icache,
)
from repro.cpu.pipeline import simulate  # noqa: E402
from repro.experiments.runner import app_context  # noqa: E402

APP = os.environ.get("REPRO_BENCH_APP", "Music")
WALK = int(os.environ.get("REPRO_BENCH_WALK", "140"))
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "5"))
WARM_FLOOR = 238363  # single-cell warm instr/s pinned in BENCH_perf.json


def main() -> int:
    trace = app_context(APP, WALK).trace()
    configs = [GOOGLE_TABLET] + [make() for make in
                                 HARDWARE_VARIANTS.values()]
    configs.append(config_trrip_icache())

    # Warm everything once: trace tables, branch/memory profiles, numpy
    # array caches, and the compiled C kernel.
    stats = simulate_batch(trace, configs)
    report = last_batch_report()
    if report["fallbacks"]:
        print(f"warning: fallback cells in bench batch: "
              f"{report['fallbacks']}", file=sys.stderr)
    instructions = sum(s.instructions for s in stats)

    best_batch = min(
        _timed(lambda: simulate_batch(trace, configs))
        for _ in range(REPEATS)
    )
    simulate(trace, GOOGLE_TABLET, engine="inline")
    best_inline = min(
        _timed(lambda: simulate(trace, GOOGLE_TABLET, engine="inline"))
        for _ in range(REPEATS)
    )

    aggregate = instructions / best_batch
    inline_rate = len(trace) / best_inline
    result = {
        "app": APP,
        "walk_blocks": WALK,
        "cells": len(configs),
        "kernel": last_batch_report()["kernel"],
        "instructions_per_batch": instructions,
        "warm_batch_s": round(best_batch, 4),
        "warm_aggregate_instr_per_s": int(aggregate),
        "warm_inline_single_cell_instr_per_s": int(inline_rate),
        "floor_single_cell_instr_per_s": WARM_FLOOR,
        "speedup_vs_floor_x": round(aggregate / WARM_FLOOR, 2),
        "speedup_vs_inline_here_x": round(aggregate / inline_rate, 2),
    }
    print(json.dumps(result, indent=2))
    if aggregate < 5 * WARM_FLOOR:
        print(f"FAIL: aggregate {int(aggregate)} instr/s is below the "
              f"5x floor ({5 * WARM_FLOOR})", file=sys.stderr)
        return 1
    return 0


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


if __name__ == "__main__":
    sys.exit(main())
