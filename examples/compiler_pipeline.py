#!/usr/bin/env python3
"""Inspect the CritIC compiler pass on real code: before/after assembly.

Profiles an app, picks its hottest hoistable CritIC, and prints the
containing basic block before and after the pass — showing the hoisted,
16-bit-converted chain behind its CDP format switch, exactly like the
paper's Fig 9 code-generation example.  Also demonstrates profile
serialization (the artifact shipped from profiler to compiler) and the
OPP16/Compress baselines on the same block.

Run:  python examples/compiler_pipeline.py [AppName]
"""

import sys

from repro.compiler import (
    CompressPass,
    CriticPass,
    Opp16Pass,
    PassManager,
    region_oracle,
)
from repro.isa import Encoding
from repro.profiler import CriticProfile, find_critic_profile
from repro.workloads import generate, get_profile


def dump_block(program, block_id, highlight_uids, limit=40):
    block = program.block(block_id)
    for pos, instr in enumerate(block.instructions[:limit]):
        mark = "*" if instr.uid in highlight_uids else " "
        print(f"   {mark} {pos:3d}  {instr.to_text()}")
    if len(block.instructions) > limit:
        print(f"     ... ({len(block.instructions) - limit} more)")


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "Maps"
    workload = generate(get_profile(app), walk_blocks=500)
    trace = workload.trace()

    profile = find_critic_profile(trace, workload.program, app_name=app)
    records = profile.select_for_compiler(max_length=5)
    if not records:
        raise SystemExit("no hoistable CritICs found at this scale")

    # The profile is a plain serializable artifact (paper: ~10KB table).
    blob = profile.to_json()
    restored = CriticProfile.from_json(blob)
    print(f"profile: {len(profile)} unique chains, "
          f"{len(blob):,} bytes of JSON, round-trips: "
          f"{restored.records == profile.records}\n")

    top = records[0]
    uid_set = set(top.uids)
    print(f"hottest hoistable CritIC of {app}: "
          f"{top.occurrences} occurrences, length {top.length}, "
          f"mean avg-fanout {top.mean_avg_fanout:.1f}, "
          f"block {top.block_id}\n")

    print("--- block before the CritIC pass (chain members marked *):")
    dump_block(workload.program, top.block_id, uid_set)

    oracle = region_oracle(workload.memory)
    result = PassManager([
        CriticPass(records, mode="cdp", may_alias=oracle)
    ]).run(workload.program)
    print("\n--- block after (CDP switch + hoisted 16-bit chain):")
    dump_block(result.program, top.block_id, uid_set)

    base_bytes = workload.program.code_bytes()
    for name, passes in (
        ("CritIC", [CriticPass(records, mode="cdp", may_alias=oracle)]),
        ("OPP16", [Opp16Pass()]),
        ("Compress", [CompressPass()]),
    ):
        out = PassManager(passes).run(workload.program)
        thumbed = sum(
            1 for i in out.program if i.encoding is Encoding.THUMB16
        )
        print(f"\n{name:<9}: static code {base_bytes:,}B -> "
              f"{out.program.code_bytes():,}B, "
              f"{thumbed} instructions in 16-bit form")


if __name__ == "__main__":
    main()
