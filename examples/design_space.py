#!/usr/bin/env python3
"""Design-space tour: CritIC vs hardware fetch mechanisms (Fig 11 mini).

Evaluates one app on the baseline core, each hardware variant (2xFD,
4x i-cache, EFetch, PerfectBr, BackendPrio, AllHW), and each with the
CritIC software transformation stacked on top — showing that the software
approach composes with hardware help.

Run:  python examples/design_space.py [AppName]
"""

import sys

from repro.cpu import (
    GOOGLE_TABLET,
    config_2xfd,
    config_4x_icache,
    config_all_hw,
    config_backend_prio,
    config_efetch,
    config_perfect_br,
    simulate,
    speedup,
)
from repro.experiments import app_context


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "Youtube"
    ctx = app_context(app, walk_blocks=600)
    base = ctx.stats("baseline", GOOGLE_TABLET)
    print(f"=== {app}: baseline {base.cycles:,} cycles "
          f"(IPC {base.ipc:.2f}) ===\n")
    print(f"{'configuration':<14} {'alone':>8} {'+CritIC':>9}")
    print("-" * 34)

    critic = ctx.stats("critic", GOOGLE_TABLET)
    print(f"{'CritIC (sw)':<14} {100 * (speedup(base, critic) - 1):>+7.1f}%"
          f" {'-':>9}")

    for label, make in (
        ("2xFD", config_2xfd),
        ("4xI$", config_4x_icache),
        ("EFetch", config_efetch),
        ("PerfectBr", config_perfect_br),
        ("BackendPrio", config_backend_prio),
        ("AllHW", config_all_hw),
    ):
        config = make()
        hw = ctx.stats("baseline", config)
        both = ctx.stats("critic", config)
        print(f"{label:<14} {100 * (speedup(base, hw) - 1):>+7.1f}%"
              f" {100 * (speedup(base, both) - 1):>+8.1f}%")

    print("\nfetch-stall anatomy under selected configs:")
    for label, stats in (
        ("baseline", base),
        ("PerfectBr", ctx.stats("baseline", config_perfect_br())),
        ("AllHW", ctx.stats("baseline", config_all_hw())),
    ):
        f = stats.fetch_stall_fractions()
        print(f"  {label:<10} F.StallForI {f['stall_for_i']:.1%}  "
              f"F.StallForR+D {f['stall_for_rd']:.1%}  "
              f"active {f['active']:.1%}")


if __name__ == "__main__":
    main()
