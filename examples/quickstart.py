#!/usr/bin/env python3
"""Quickstart: profile one app, apply CritIC, measure the speedup.

This walks the paper's whole flow on one Play-Store-style app:

1. generate the app workload (program + recorded-input walk),
2. run the offline profiler to find CritICs (avg fanout > 8, length <= 5),
3. run the CritIC compiler pass (hoist + 16-bit conversion behind CDP),
4. simulate both binaries on the Table-I Google-Tablet model,
5. report speedup, fetch-stall changes, and energy.

Run:  python examples/quickstart.py [AppName]
"""

import sys

from repro.compiler import CriticPass, PassManager, region_oracle
from repro.cpu import simulate, speedup
from repro.energy import energy_of, savings
from repro.profiler import find_critic_profile
from repro.workloads import generate, get_profile, mobile_app_names


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "Acrobat"
    if app not in mobile_app_names():
        raise SystemExit(f"unknown app {app!r}; try one of "
                         f"{', '.join(mobile_app_names())}")

    print(f"=== CritIC quickstart: {app} ===\n")

    # 1. Workload (deterministic: same seed -> same app behaviour).
    workload = generate(get_profile(app), walk_blocks=800)
    trace = workload.trace()
    print(f"generated {len(trace):,} dynamic instructions "
          f"({workload.program.instruction_count():,} static)")

    # 2. Offline profiling (the paper's QEMU+gem5+Spark stage).
    profile = find_critic_profile(trace, workload.program, app_name=app)
    records = profile.select_for_compiler(max_length=5)
    print(f"profiler: {len(profile)} unique CritICs, "
          f"{profile.total_coverage():.1%} dynamic coverage, "
          f"table {profile.table_bytes()} bytes; "
          f"{len(records)} selected for the compiler")

    # 3. The CritIC compiler pass (ART-style final pass).
    result = PassManager([
        CriticPass(records, mode="cdp",
                   may_alias=region_oracle(workload.memory)),
    ]).run(workload.program)
    stats = result.ctx.stats["critic"]
    print(f"compiler: {stats.get('chains', 0)} chains hoisted, "
          f"{stats.get('thumbed', 0)} instructions -> 16-bit, "
          f"{stats.get('cdp-commands', 0)} CDP switches "
          f"({stats.get('skipped-hazard', 0)} skipped on hazards)")

    # 4. Simulate baseline and optimized binaries on the same inputs.
    base = simulate(trace)
    optimized = simulate(workload.trace_for(result.program))

    # 5. Report.
    gain = 100 * (speedup(base, optimized) - 1)
    print(f"\nbaseline : {base.cycles:,} cycles (IPC {base.ipc:.2f})")
    print(f"CritIC   : {optimized.cycles:,} cycles "
          f"(IPC {optimized.ipc:.2f})")
    print(f"speedup  : {gain:+.2f}%")

    bf, of = base.fetch_stall_fractions(), \
        optimized.fetch_stall_fractions()
    print(f"F.StallForI  : {bf['stall_for_i']:.1%} -> "
          f"{of['stall_for_i']:.1%}")
    print(f"F.StallForR+D: {bf['stall_for_rd']:.1%} -> "
          f"{of['stall_for_rd']:.1%}")

    saving = savings(energy_of(base), energy_of(optimized))
    print(f"energy   : CPU cluster {saving.cpu_only_pct:+.2f}%, "
          f"SoC {saving.total_pct_of_soc:+.2f}%")


if __name__ == "__main__":
    main()
