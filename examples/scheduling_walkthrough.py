#!/usr/bin/env python3
"""Walkthrough of the paper's Fig 2 example: why single-instruction
fanout prioritization misses, and how ICs capture it.

Builds the Fig 2 DFG (I0 fans out to I1..I10; I10 to I11..I20; I20 feeds
the high-fanout I22), then:

* shows which paths qualify as self-contained ICs and which do not,
* computes each IC's average-fanout criticality,
* shows that the chain through the *low-fanout* I20 is the one worth
  prioritizing — the paper's core observation.

Run:  python examples/scheduling_walkthrough.py
"""

from repro.dfg import Dfg, iter_maximal_paths, make_chain
from repro.isa import Instruction, Opcode
from repro.trace import Trace, TraceEntry


def alu(dest, *srcs):
    return Instruction(Opcode.ADD, dests=(dest,), srcs=srcs)


def build_fig2_trace() -> Trace:
    """The Fig 2 DFG as a dynamic stream (see paper Sec. II-C)."""
    instrs = [alu(0, 6, 7)]                      # I0
    instrs += [alu(2, 0) for _ in range(9)]      # I1..I9  (consume I0)
    instrs += [alu(1, 0)]                        # I10     (consumes I0)
    instrs += [alu(3, 1)]                        # I11     (consumes I10)
    instrs += [alu(4, 1) for _ in range(8)]      # I12..I19
    instrs += [alu(5, 1)]                        # I20     (fanout 1!)
    instrs += [alu(2, 0, 3)]                     # I21     (I0 and I11)
    instrs += [alu(3, 5)]                        # I22     (consumes I20)
    return Trace([
        TraceEntry(seq=i, instr=ins.with_uid(i), pc=0x1000 + 4 * i)
        for i, ins in enumerate(instrs)
    ])


def label(pos: int) -> str:
    return f"I{pos}"


def main() -> None:
    trace = build_fig2_trace()
    dfg = Dfg(trace)

    print("=== Fig 2 walkthrough ===\n")
    print("fanouts:")
    for pos in (0, 10, 20, 22):
        print(f"  {label(pos):>4}: fanout {dfg.fanouts[pos]:2d}   "
              f"{trace.entries[pos].instr.to_text()}")

    print("\nIC checks (self-contained paths):")
    for path, note in [
        ([0, 10, 20, 22], "the chain the paper prioritizes"),
        ([0, 10, 11], "a shorter IC"),
        ([0, 1], "sub-path of an IC is an IC"),
        ([0, 1, 21], "NOT an IC: I21 also depends on I11"),
    ]:
        ok = dfg.is_self_contained_path(path)
        names = " -> ".join(label(p) for p in path)
        print(f"  {names:<24} {'IC ' if ok else 'not IC':<7} ({note})")

    print("\nchain criticalities (average fanout per member):")
    for path in ([0, 10, 20, 22], [0, 10, 11]):
        chain = make_chain(dfg, path)
        names = " -> ".join(label(p) for p in path)
        print(f"  {names:<24} avg fanout {chain.avg_fanout:5.2f}   "
              f"critical at threshold 8: {chain.is_critical(8.0)}")

    print("\nthe point: I20 has fanout 1 — a single-instruction fanout")
    print("heuristic never prioritizes it, yet it gates the high-fanout")
    print("I22.  Chain-level criticality (avg fanout of I0->I10->I20->I22")
    print("=", f"{make_chain(dfg, [0, 10, 20, 22]).avg_fanout:.2f})",
          "captures it.")

    print("\nall maximal ICs found automatically:")
    shown = 0
    for path in iter_maximal_paths(dfg):
        if len(path) >= 3:
            chain = make_chain(dfg, path)
            names = " -> ".join(label(p) for p in path)
            print(f"  {names:<28} avg fanout {chain.avg_fanout:.2f}")
            shown += 1
        if shown >= 6:
            break


if __name__ == "__main__":
    main()
